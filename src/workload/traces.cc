#include "workload/traces.h"

#include <algorithm>
#include <cmath>

#include "workload/sampling.h"

namespace ldp::workload {
namespace {

// Client address pool: 172.16.0.0/12-style private space, skipping .0/.255.
IpAddress ClientAddress(size_t index) {
  uint32_t base = IpAddress(172, 16, 0, 0).value();
  // Spread across the space; avoid .0 and .255 host bytes for realism.
  uint32_t offset = static_cast<uint32_t>(index);
  uint32_t addr = base + (offset / 254) * 256 + (offset % 254) + 1;
  return IpAddress(addr);
}

uint16_t EphemeralPort(Rng& rng) {
  return static_cast<uint16_t>(1024 + rng.NextBelow(64512));
}

dns::RRType SampleQtype(Rng& rng) {
  double u = rng.NextDouble();
  if (u < 0.58) return dns::RRType::kA;
  if (u < 0.82) return dns::RRType::kAAAA;
  if (u < 0.88) return dns::RRType::kNS;
  if (u < 0.92) return dns::RRType::kMX;
  if (u < 0.95) return dns::RRType::kDS;
  if (u < 0.98) return dns::RRType::kSOA;
  return dns::RRType::kTXT;
}

std::string RandomLabel(Rng& rng, size_t min_len, size_t max_len) {
  size_t len = min_len + rng.NextBelow(max_len - min_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + rng.NextBelow(26)));
  }
  return out;
}

}  // namespace

std::vector<trace::QueryRecord> MakeFixedIntervalTrace(
    const FixedIntervalConfig& config) {
  Rng rng(config.seed);
  dns::Name base = config.base_name.IsRoot()
                       ? *dns::Name::Parse("example.com")
                       : config.base_name;
  size_t n = config.interarrival > 0
                 ? static_cast<size_t>(config.duration / config.interarrival)
                 : 0;
  std::vector<trace::QueryRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace::QueryRecord record;
    record.timestamp = static_cast<NanoTime>(i) * config.interarrival;
    record.src = ClientAddress(i % config.n_clients);
    record.src_port = EphemeralPort(rng);
    record.dst = config.server;
    record.dst_port = 53;
    record.protocol = trace::Protocol::kUdp;
    record.id = static_cast<uint16_t>(rng.NextU64());
    record.qname = *base.Child("q" + std::to_string(i));
    record.qtype = dns::RRType::kA;
    record.rd = false;
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<trace::QueryRecord> MakeBRootTrace(const BRootConfig& config) {
  Rng rng(config.seed);

  // Heavy-tailed per-client weights -> alias sampler.
  auto weights = HeavyTailClientWeights(config.n_clients, config.top_fraction,
                                        config.top_share, config.seed ^ 0xc11);
  auto sampler = DiscreteSampler::Build(weights);

  // Popularity of existing TLDs (zipf: com dominates, like reality).
  ZipfSampler tld_popularity(config.n_tlds, 1.1);

  std::vector<trace::QueryRecord> records;
  records.reserve(static_cast<size_t>(
      config.median_rate_qps * ToSeconds(config.duration) * 1.1));

  // Per-second nonhomogeneous Poisson arrivals. The rate follows a slow
  // sinusoid (roots see diurnal-ish variation; over an hour the paper's
  // Fig 8 rate curve wobbles a few percent) plus white noise.
  int64_t n_seconds = config.duration / kNanosPerSecond;
  for (int64_t sec = 0; sec < n_seconds; ++sec) {
    double phase = 2.0 * 3.14159265358979 * static_cast<double>(sec) / 600.0;
    double rate = config.median_rate_qps *
                  (1.0 + config.rate_wobble * std::sin(phase));
    // Poisson(rate) ≈ Normal(rate, sqrt(rate)) at these sizes.
    double sampled = rate + std::sqrt(std::max(rate, 1.0)) * rng.NextNormal(0, 1);
    int64_t count = std::max<int64_t>(0, std::llround(sampled));

    // Uniform offsets within the second, sorted.
    std::vector<NanoDuration> offsets(static_cast<size_t>(count));
    for (auto& off : offsets) {
      off = static_cast<NanoDuration>(rng.NextBelow(kNanosPerSecond));
    }
    std::sort(offsets.begin(), offsets.end());

    for (NanoDuration off : offsets) {
      trace::QueryRecord record;
      record.timestamp = sec * kNanosPerSecond + off;
      size_t client = sampler.ok() ? sampler->Sample(rng) : 0;
      record.src = ClientAddress(client);
      record.src_port = EphemeralPort(rng);
      record.dst = config.server;
      record.dst_port = 53;
      record.protocol = rng.NextBool(config.tcp_fraction)
                            ? trace::Protocol::kTcp
                            : trace::Protocol::kUdp;
      record.id = static_cast<uint16_t>(rng.NextU64());
      record.qtype = SampleQtype(rng);
      record.rd = rng.NextBool(0.2);  // some resolvers leak RD to the root

      if (rng.NextBool(config.nxdomain_fraction)) {
        // Junk: random non-existent TLD or hostname-as-TLD typo traffic.
        auto junk = dns::Name::Root().Child(RandomLabel(rng, 6, 16));
        record.qname = junk.ok() ? *junk : dns::Name::Root();
        record.qtype = dns::RRType::kA;
      } else {
        // Existing TLD: ask about the TLD itself or a name below it
        // (both produce referrals from the root).
        size_t tld_index = tld_popularity.Sample(rng);
        dns::Name tld_name = *dns::Name::Root().Child(TldLabel(tld_index));
        if (rng.NextBool(0.8)) {
          auto below = tld_name.Child("domain" + std::to_string(
                                          rng.NextBelow(1000)));
          record.qname = below.ok() ? *below : tld_name;
        } else {
          record.qname = tld_name;
        }
      }

      if (rng.NextBool(config.do_fraction)) {
        record.edns = true;
        record.do_bit = true;
        record.udp_payload_size = 4096;
      } else if (rng.NextBool(0.3)) {
        record.edns = true;
        record.udp_payload_size = 1232;
      }
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<trace::QueryRecord> MakeRecursiveTrace(
    const RecConfig& config, const Hierarchy& hierarchy) {
  Rng rng(config.seed);
  std::vector<trace::QueryRecord> records;
  records.reserve(config.n_records);
  if (hierarchy.hostnames.empty()) return records;

  ZipfSampler popularity(hierarchy.hostnames.size(), config.zipf_s);
  // Clients have mildly skewed activity as well.
  auto weights =
      HeavyTailClientWeights(config.n_clients, 0.2, 0.6, config.seed ^ 0xabc);
  auto client_sampler = DiscreteSampler::Build(weights);

  NanoTime now = 0;
  for (size_t i = 0; i < config.n_records; ++i) {
    now += SecondsF(rng.NextExponential(config.mean_interarrival_s));
    trace::QueryRecord record;
    record.timestamp = now;
    size_t client = client_sampler.ok() ? client_sampler->Sample(rng) : 0;
    record.src = ClientAddress(client);
    record.src_port = EphemeralPort(rng);
    record.dst = config.server;
    record.dst_port = 53;
    record.protocol = trace::Protocol::kUdp;
    record.id = static_cast<uint16_t>(rng.NextU64());
    record.qname = hierarchy.hostnames[popularity.Sample(rng)];
    record.qtype = rng.NextBool(0.75) ? dns::RRType::kA : dns::RRType::kAAAA;
    record.rd = true;  // stub -> recursive queries request recursion
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ldp::workload
