// Trace synthesis calibrated to the paper's Table 1:
//
//  * Fixed-interval synthetic traces (syn-0 … syn-4): one query every
//    1 s … 0.1 ms with unique query names.
//  * B-Root model: Poisson arrivals around a wobbling per-second rate,
//    heavy-tailed per-client load (1% of clients ≈ 75% of queries, 81%
//    of clients < 10 queries), 72.3% DO, 3% TCP, and a root-realistic
//    qname mix (existing-TLD referrals + junk NXDOMAIN names).
//  * Recursive-trace model (Rec-17): a department-level recursive's
//    clients querying hostnames across ~549 zones.
//
// All generators are deterministic in their seed.
#ifndef LDPLAYER_WORKLOAD_TRACES_H
#define LDPLAYER_WORKLOAD_TRACES_H

#include <vector>

#include "common/clock.h"
#include "common/ip.h"
#include "trace/record.h"
#include "workload/hierarchy.h"

namespace ldp::workload {

struct FixedIntervalConfig {
  NanoDuration interarrival = Millis(1);
  NanoDuration duration = Seconds(60);
  size_t n_clients = 10000;
  dns::Name base_name;            // default example.com
  IpAddress server = IpAddress(10, 0, 0, 1);
  uint64_t seed = 7;
};

// syn-N traces: every query gets a unique name q<i>.<base> so replayed
// queries can be matched with responses after the fact (paper §4.1).
std::vector<trace::QueryRecord> MakeFixedIntervalTrace(
    const FixedIntervalConfig& config);

struct BRootConfig {
  double median_rate_qps = 3800;   // paper measured 38k; default is a
                                   // laptop-scale 1/10 replica
  NanoDuration duration = Seconds(60);
  size_t n_clients = 20000;
  double do_fraction = 0.723;      // §5.1 "72.3% queries with DO bit"
  double tcp_fraction = 0.03;      // §5.2 "3% queries over TCP"
  // Junk names that NXDOMAIN at the root. DITL-era root traffic was
  // majority junk (Castro et al. 2008 put legitimate traffic around a
  // third); signed negative answers are also what makes the all-DNSSEC
  // what-if expensive (Fig 10).
  double nxdomain_fraction = 0.55;
  size_t n_tlds = 100;             // existing TLDs referenced by queries
  double top_fraction = 0.01;      // client skew calibration:
  double top_share = 0.75;         //   1% of clients -> 75% of load
  double rate_wobble = 0.15;       // sinusoidal per-second rate modulation
  IpAddress server = IpAddress(10, 0, 0, 1);
  uint64_t seed = 1;
};

std::vector<trace::QueryRecord> MakeBRootTrace(const BRootConfig& config);

struct RecConfig {
  size_t n_clients = 91;
  size_t n_records = 20000;
  double mean_interarrival_s = 0.18;
  double zipf_s = 1.0;             // name popularity skew
  IpAddress server = IpAddress(10, 0, 0, 2);
  uint64_t seed = 17;
};

// Queries a stub population would send to a recursive, drawn from the
// hierarchy's existing hostnames (plus their TLD/SLD intermediates).
std::vector<trace::QueryRecord> MakeRecursiveTrace(const RecConfig& config,
                                                   const Hierarchy& hierarchy);

}  // namespace ldp::workload

#endif  // LDPLAYER_WORKLOAD_TRACES_H
