#include "zone/dnssec.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace ldp::zone {
namespace {

Bytes DeterministicBytes(ldp::Rng& rng, size_t size) {
  Bytes out(size);
  for (auto& b : out) b = static_cast<uint8_t>(rng.NextU64());
  return out;
}

// RFC 4034 Appendix B key tag over the DNSKEY RDATA wire form.
uint16_t ComputeKeyTag(const dns::DnskeyRdata& key) {
  ldp::ByteWriter w;
  w.WriteU16(key.flags);
  w.WriteU8(key.protocol);
  w.WriteU8(key.algorithm);
  w.WriteBytes(key.public_key);
  uint32_t acc = 0;
  const Bytes& data = w.data();
  for (size_t i = 0; i < data.size(); ++i) {
    acc += (i & 1) ? data[i] : (static_cast<uint32_t>(data[i]) << 8);
  }
  acc += (acc >> 16) & 0xffff;
  return static_cast<uint16_t>(acc & 0xffff);
}

}  // namespace

Status SignZone(Zone& zone, const DnssecConfig& config) {
  if (zone.FindRRset(zone.origin(), dns::RRType::kDNSKEY) != nullptr) {
    return Error(ErrorCode::kAlreadyExists,
                 "zone " + zone.origin().ToString() + " is already signed");
  }
  const dns::RRset* soa = zone.Soa();
  if (soa == nullptr) {
    return Error(ErrorCode::kInvalidArgument, "cannot sign a zone without SOA");
  }
  uint32_t ttl = soa->ttl;
  ldp::Rng rng(config.seed ^ zone.origin().Hash());

  // 1. DNSKEY RRset at the apex: KSK + one ZSK (two during rollover).
  dns::DnskeyRdata ksk{257, 3, config.algorithm,
                       DeterministicBytes(rng, PublicKeySize(config.ksk_bits))};
  std::vector<dns::DnskeyRdata> zsks;
  zsks.push_back(dns::DnskeyRdata{
      256, 3, config.algorithm,
      DeterministicBytes(rng, PublicKeySize(config.zsk_bits))});
  if (config.zsk_rollover) {
    zsks.push_back(dns::DnskeyRdata{
        256, 3, config.algorithm,
        DeterministicBytes(rng, PublicKeySize(config.zsk_bits))});
  }
  for (const auto& zsk : zsks) {
    LDP_RETURN_IF_ERROR(zone.AddRecord(dns::ResourceRecord{
        zone.origin(), dns::RRType::kDNSKEY, dns::RRClass::kIN, ttl, zsk}));
  }
  LDP_RETURN_IF_ERROR(zone.AddRecord(dns::ResourceRecord{
      zone.origin(), dns::RRType::kDNSKEY, dns::RRClass::kIN, ttl, ksk}));

  // 2. Authoritative-data inventory. Delegation NS and glue at/below cuts
  // are excluded from both the NSEC type maps and signing.
  std::vector<dns::Name> cuts = zone.DelegationPoints();
  auto below_cut = [&cuts](const dns::Name& name) {
    return std::any_of(cuts.begin(), cuts.end(), [&](const dns::Name& cut) {
      return name.IsSubdomainOf(cut) && name != cut;
    });
  };
  auto is_authoritative = [&](const dns::RRset& rrset) {
    if (below_cut(rrset.name)) return false;  // glue
    bool at_cut = std::find(cuts.begin(), cuts.end(), rrset.name) != cuts.end();
    if (at_cut) {
      return rrset.type == dns::RRType::kDS;  // parent side of the cut
    }
    return true;
  };

  struct Target {
    dns::Name name;
    dns::RRType type;
    uint32_t ttl;
  };
  std::vector<Target> to_sign;
  // NSEC chain members: every name with any authoritative data or a cut
  // (cuts appear in the chain with their NS bit, unsigned).
  std::map<dns::Name, std::vector<dns::RRType>> nsec_types;
  zone.ForEachRRset([&](const dns::RRset& rrset) {
    if (below_cut(rrset.name)) return;
    nsec_types[rrset.name].push_back(rrset.type);
    if (is_authoritative(rrset)) {
      to_sign.push_back(Target{rrset.name, rrset.type, rrset.ttl});
    }
  });

  // 3. NSEC chain in canonical order, wrapping to the apex.
  std::vector<dns::Name> chain;
  chain.reserve(nsec_types.size());
  for (const auto& [name, types] : nsec_types) chain.push_back(name);
  for (size_t i = 0; i < chain.size(); ++i) {
    const dns::Name& owner = chain[i];
    const dns::Name& next = chain[(i + 1) % chain.size()];
    std::vector<dns::RRType> types = nsec_types[owner];
    types.push_back(dns::RRType::kRRSIG);
    types.push_back(dns::RRType::kNSEC);
    std::sort(types.begin(), types.end(), [](dns::RRType a, dns::RRType b) {
      return static_cast<uint16_t>(a) < static_cast<uint16_t>(b);
    });
    types.erase(std::unique(types.begin(), types.end()), types.end());
    dns::NsecRdata nsec{next, std::move(types)};
    LDP_RETURN_IF_ERROR(zone.AddRecord(dns::ResourceRecord{
        owner, dns::RRType::kNSEC, dns::RRClass::kIN, soa->ttl, nsec}));
    bool at_cut =
        std::find(cuts.begin(), cuts.end(), owner) != cuts.end();
    // NSEC records are themselves signed (even at cuts, where the NSEC is
    // authoritative parent-side data).
    (void)at_cut;
    to_sign.push_back(Target{owner, dns::RRType::kNSEC, soa->ttl});
  }

  // 4. Signatures. The DNSKEY RRset is signed by the KSK (and ZSK); all
  // other RRsets by the ZSK(s).
  uint16_t ksk_tag = ComputeKeyTag(ksk);
  std::vector<uint16_t> zsk_tags;
  for (const auto& zsk : zsks) zsk_tags.push_back(ComputeKeyTag(zsk));

  to_sign.push_back(Target{zone.origin(), dns::RRType::kDNSKEY, ttl});

  for (const auto& target : to_sign) {
    auto make_sig = [&](int key_bits, uint16_t key_tag) {
      dns::RrsigRdata sig;
      sig.type_covered = target.type;
      sig.algorithm = config.algorithm;
      sig.labels = static_cast<uint8_t>(
          target.name.IsWildcard() ? target.name.label_count() - 1
                                   : target.name.label_count());
      sig.original_ttl = target.ttl;
      sig.inception = config.inception;
      sig.expiration = config.inception + config.signature_validity_seconds;
      sig.key_tag = key_tag;
      sig.signer = zone.origin();
      sig.signature = DeterministicBytes(rng, SignatureSize(key_bits));
      return sig;
    };

    if (target.type == dns::RRType::kDNSKEY) {
      LDP_RETURN_IF_ERROR(zone.AddRecord(
          dns::ResourceRecord{target.name, dns::RRType::kRRSIG,
                              dns::RRClass::kIN, target.ttl,
                              make_sig(config.ksk_bits, ksk_tag)}));
      continue;
    }
    for (size_t k = 0; k < zsk_tags.size(); ++k) {
      LDP_RETURN_IF_ERROR(zone.AddRecord(
          dns::ResourceRecord{target.name, dns::RRType::kRRSIG,
                              dns::RRClass::kIN, target.ttl,
                              make_sig(config.zsk_bits, zsk_tags[k])}));
    }
  }
  return Status::Ok();
}

}  // namespace ldp::zone
