// Synthetic DNSSEC signing (paper §5.1): adds DNSKEY, NSEC, and RRSIG
// records whose *sizes* match real RSA signing at a configurable ZSK key
// size. Signatures are deterministic pseudo-random bytes — cryptographically
// meaningless but byte-for-byte the size a real signer would emit, which is
// all the bandwidth experiments of Figure 10 depend on.
//
// Authoritative-only data is signed; delegation NS sets and glue below zone
// cuts are not (RFC 4035 §2.2), and DS records at cuts are.
#ifndef LDPLAYER_ZONE_DNSSEC_H
#define LDPLAYER_ZONE_DNSSEC_H

#include <cstdint>

#include "common/result.h"
#include "zone/zone.h"

namespace ldp::zone {

struct DnssecConfig {
  int zsk_bits = 1024;       // zone-signing key modulus size
  int ksk_bits = 2048;       // key-signing key (signs the DNSKEY RRset)
  uint8_t algorithm = 8;     // RSASHA256
  uint32_t signature_validity_seconds = 30 * 24 * 3600;
  uint32_t inception = 1460000000;  // fixed epoch for reproducibility
  // ZSK rollover (pre-publish + double-signature phase): two ZSKs in the
  // DNSKEY set and two signatures on every RRset — the paper's "rollover"
  // bars in Figure 10.
  bool zsk_rollover = false;
  uint64_t seed = 0x5eed;    // drives deterministic key/signature bytes
};

// Signs `zone` in place. Idempotent signing is not supported: signing an
// already-signed zone is an error.
Status SignZone(Zone& zone, const DnssecConfig& config);

// RSA signature size for a given modulus size, in bytes.
constexpr size_t SignatureSize(int key_bits) {
  return static_cast<size_t>(key_bits) / 8;
}

// DNSKEY public-key RDATA size for RSA: exponent length byte + 3-byte
// exponent + modulus.
constexpr size_t PublicKeySize(int key_bits) {
  return 4 + static_cast<size_t>(key_bits) / 8;
}

}  // namespace ldp::zone

#endif  // LDPLAYER_ZONE_DNSSEC_H
