#include "zone/lookup.h"

#include <algorithm>
#include <unordered_set>

namespace ldp::zone {
namespace {

// The suffix of `name` keeping its last `labels` labels.
dns::Name Suffix(const dns::Name& name, size_t labels) {
  const auto& all = name.labels();
  std::vector<std::string> keep(all.end() - static_cast<ptrdiff_t>(labels),
                                all.end());
  auto result = dns::Name::FromLabels(std::move(keep));
  return *result;  // cannot fail: labels came from a valid name
}

// Copies an RRset with a replaced owner name (wildcard synthesis).
dns::RRset WithOwner(const dns::RRset& rrset, const dns::Name& owner) {
  dns::RRset out = rrset;
  out.name = owner;
  return out;
}

// Glue: A/AAAA records for each NS target found inside this zone.
void CollectGlue(const Zone& zone, const dns::RRset& ns_rrset,
                 std::vector<dns::RRset>& additional) {
  for (const auto& rdata : ns_rrset.rdatas) {
    const auto* ns = std::get_if<dns::NsRdata>(&rdata);
    if (ns == nullptr) continue;
    if (!ns->nsdname.IsSubdomainOf(zone.origin())) continue;
    for (dns::RRType type : {dns::RRType::kA, dns::RRType::kAAAA}) {
      const dns::RRset* glue = zone.FindRRset(ns->nsdname, type);
      if (glue != nullptr) additional.push_back(*glue);
    }
  }
}

}  // namespace

LookupResult Lookup(const Zone& zone, const dns::Name& qname,
                    dns::RRType qtype) {
  LookupResult result;
  if (!qname.IsSubdomainOf(zone.origin())) {
    result.outcome = LookupOutcome::kNotInZone;
    return result;
  }

  // 1. Referral check: the highest zone cut on the path from the apex to
  // qname wins. A cut at qname itself still answers DS from this side of
  // the cut (the parent holds DS, RFC 4035 §3.1.4.1).
  size_t origin_labels = zone.origin().label_count();
  for (size_t i = origin_labels + 1; i <= qname.label_count(); ++i) {
    dns::Name candidate = Suffix(qname, i);
    const dns::RRset* ns = zone.FindRRset(candidate, dns::RRType::kNS);
    if (ns == nullptr) continue;
    if (candidate == qname && qtype == dns::RRType::kDS) break;
    result.outcome = LookupOutcome::kDelegation;
    result.authority.push_back(*ns);
    const dns::RRset* ds = zone.FindRRset(candidate, dns::RRType::kDS);
    if (ds != nullptr) result.authority.push_back(*ds);
    CollectGlue(zone, *ns, result.additional);
    return result;
  }

  // 2. Exact match / CNAME chain. The chase loop re-enters for in-zone
  // CNAME targets; a visited set guards against rdata loops.
  dns::Name current = qname;
  std::unordered_set<dns::Name> visited;
  bool synthesized_any = false;
  while (true) {
    if (!visited.insert(current).second) break;  // CNAME loop: stop chasing

    bool node_exists = zone.HasNode(current);
    const dns::RRset* node_src = nullptr;
    dns::RRset synthesized;  // wildcard-expanded copy, when applicable
    bool from_wildcard = false;

    if (!node_exists) {
      // 3. Wildcard: only if `current` is not an empty non-terminal and a
      // "*.<closest-enclosing-existing-name>" node exists (RFC 4592).
      if (zone.IsEmptyNonTerminal(current)) {
        result.outcome = LookupOutcome::kNoData;
        break;
      }
      // Find the closest encloser by walking up.
      dns::Name encloser = current;
      bool found_wildcard = false;
      while (encloser.label_count() > zone.origin().label_count()) {
        auto parent = encloser.Parent();
        encloser = *parent;
        if (zone.HasNode(encloser) || zone.IsEmptyNonTerminal(encloser)) {
          auto wc = encloser.Child("*");
          if (wc.ok() && zone.HasNode(*wc)) {
            // Wildcard applies only if nothing exists between qname and
            // the encloser (guaranteed: we stopped at the closest one).
            from_wildcard = true;
            found_wildcard = true;
            // Reuse the wildcard node below via `wc_name`.
            encloser = *wc;
          }
          break;
        }
      }
      if (!found_wildcard) {
        result.outcome = LookupOutcome::kNxDomain;
        break;  // fall through to attach the SOA for negative caching
      }
      // CNAME at the wildcard?
      const dns::RRset* wc_cname =
          zone.FindRRset(encloser, dns::RRType::kCNAME);
      if (wc_cname != nullptr && qtype != dns::RRType::kCNAME &&
          qtype != dns::RRType::kANY) {
        result.answers.push_back(WithOwner(*wc_cname, current));
        result.wildcard = true;
        synthesized_any = true;
        const auto& target =
            std::get<dns::CnameRdata>(wc_cname->rdatas.front()).target;
        if (!target.IsSubdomainOf(zone.origin())) {
          result.outcome = LookupOutcome::kCname;
          return result;
        }
        current = target;
        continue;
      }
      node_src = zone.FindRRset(encloser, qtype);
      if (node_src == nullptr) {
        result.outcome = LookupOutcome::kNoData;
        result.wildcard = true;
        break;
      }
      synthesized = WithOwner(*node_src, current);
      result.answers.push_back(synthesized);
      result.wildcard = true;
      result.outcome =
          synthesized_any ? LookupOutcome::kCname : LookupOutcome::kAnswer;
      return result;
    }

    // Node exists. CNAME first (unless the query asks for the CNAME).
    const dns::RRset* cname = zone.FindRRset(current, dns::RRType::kCNAME);
    if (cname != nullptr && qtype != dns::RRType::kCNAME &&
        qtype != dns::RRType::kANY) {
      result.answers.push_back(*cname);
      synthesized_any = true;
      const auto& target =
          std::get<dns::CnameRdata>(cname->rdatas.front()).target;
      if (!target.IsSubdomainOf(zone.origin())) {
        result.outcome = LookupOutcome::kCname;
        return result;
      }
      current = target;
      continue;
    }

    if (qtype == dns::RRType::kANY) {
      for (const auto* rrset : zone.FindNode(current)) {
        result.answers.push_back(*rrset);
      }
      result.outcome = result.answers.empty() ? LookupOutcome::kNoData
                                              : LookupOutcome::kAnswer;
      if (result.outcome == LookupOutcome::kNoData) break;
      return result;
    }

    const dns::RRset* match = zone.FindRRset(current, qtype);
    if (match != nullptr) {
      result.answers.push_back(*match);
      result.outcome =
          synthesized_any ? LookupOutcome::kCname : LookupOutcome::kAnswer;
      return result;
    }
    result.outcome = LookupOutcome::kNoData;
    break;
  }

  // Negative answer: attach the SOA for caching (RFC 2308).
  if (synthesized_any) {
    // A chase that dead-ends inside the zone is still a CNAME response;
    // the negative part applies to the final target.
    result.outcome = LookupOutcome::kCname;
  }
  const dns::RRset* soa = zone.Soa();
  if (soa != nullptr) result.authority.push_back(*soa);
  return result;
}

namespace {

// Returns a copy of the RRSIG RRset at `name` narrowed to signatures
// covering `covered`, or an empty optional when none exist.
std::optional<dns::RRset> RrsigsCovering(const Zone& zone,
                                         const dns::Name& name,
                                         dns::RRType covered) {
  const dns::RRset* sigs = zone.FindRRset(name, dns::RRType::kRRSIG);
  if (sigs == nullptr) return std::nullopt;
  dns::RRset out;
  out.name = name;
  out.type = dns::RRType::kRRSIG;
  out.klass = sigs->klass;
  out.ttl = sigs->ttl;
  for (const auto& rdata : sigs->rdatas) {
    const auto* sig = std::get_if<dns::RrsigRdata>(&rdata);
    if (sig != nullptr && sig->type_covered == covered) {
      out.rdatas.push_back(rdata);
    }
  }
  if (out.rdatas.empty()) return std::nullopt;
  return out;
}

// Finds the NSEC record whose owner-to-next span covers `qname` (the zone
// must be signed and `qname` must sort inside the zone).
std::optional<dns::RRset> CoveringNsec(const Zone& zone,
                                       const dns::Name& qname) {
  const dns::RRset* nsec =
      zone.FindPredecessorWithType(qname, dns::RRType::kNSEC);
  if (nsec == nullptr) return std::nullopt;
  return *nsec;
}

void AppendRRset(const dns::RRset& rrset,
                 std::vector<dns::ResourceRecord>& section) {
  for (auto& record : rrset.ToRecords()) section.push_back(std::move(record));
}

// Appends rrset (+ covering RRSIGs when signing data exists and DNSSEC was
// requested). For wildcard-synthesized rrsets the signatures live at the
// wildcard owner; we look them up at both owners.
void AppendWithSigs(const Zone& zone, const dns::RRset& rrset,
                    bool include_dnssec,
                    std::vector<dns::ResourceRecord>& section) {
  AppendRRset(rrset, section);
  if (!include_dnssec || rrset.type == dns::RRType::kRRSIG) return;
  auto sigs = RrsigsCovering(zone, rrset.name, rrset.type);
  if (!sigs.has_value()) {
    // Wildcard synthesis: signatures are stored at the wildcard owner.
    auto wc = rrset.name.AsWildcardSibling();
    if (wc.ok()) {
      sigs = RrsigsCovering(zone, *wc, rrset.type);
      if (sigs.has_value()) sigs->name = rrset.name;
    }
  }
  if (sigs.has_value()) AppendRRset(*sigs, section);
}

}  // namespace

dns::Message BuildResponse(const Zone& zone, const dns::Message& query,
                           bool include_dnssec) {
  dns::Message response;
  response.id = query.id;
  response.qr = true;
  response.opcode = query.opcode;
  response.rd = query.rd;
  response.questions = query.questions;
  if (query.edns.has_value()) {
    response.edns = dns::Edns{.udp_payload_size = 4096,
                              .do_bit = query.edns->do_bit};
  }

  if (query.opcode != dns::Opcode::kQuery || query.questions.empty()) {
    response.rcode = dns::Rcode::kNotImp;
    return response;
  }
  const dns::Question& q = query.questions.front();

  LookupResult result = Lookup(zone, q.name, q.type);
  switch (result.outcome) {
    case LookupOutcome::kNotInZone:
      response.rcode = dns::Rcode::kRefused;
      return response;
    case LookupOutcome::kNxDomain:
      response.rcode = dns::Rcode::kNxDomain;
      response.aa = true;
      break;
    case LookupOutcome::kDelegation:
      response.aa = false;
      break;
    default:
      response.aa = true;
      break;
  }

  for (const auto& rrset : result.answers) {
    AppendWithSigs(zone, rrset, include_dnssec, response.answers);
  }
  for (const auto& rrset : result.authority) {
    // Referral NS sets are not signed (they live on the parent side of the
    // cut); everything else in the authority section is.
    bool sign = include_dnssec &&
                !(result.outcome == LookupOutcome::kDelegation &&
                  rrset.type == dns::RRType::kNS);
    AppendWithSigs(zone, rrset, sign, response.authorities);
  }
  for (const auto& rrset : result.additional) {
    AppendWithSigs(zone, rrset, include_dnssec, response.additionals);
  }

  // DNSSEC denial of existence: covering NSEC records for negative answers
  // and for wildcard expansions (RFC 4035 §3.1.3).
  if (include_dnssec &&
      (result.outcome == LookupOutcome::kNxDomain ||
       result.outcome == LookupOutcome::kNoData || result.wildcard)) {
    auto nsec = CoveringNsec(zone, q.name);
    if (nsec.has_value()) {
      AppendWithSigs(zone, *nsec, true, response.authorities);
    }
    if (result.outcome == LookupOutcome::kNxDomain) {
      // Also deny the wildcard at the apex (simplified: one extra NSEC,
      // matching the two-to-three NSEC shape of real root responses).
      auto wc = zone.origin().Child("*");
      if (wc.ok()) {
        auto wc_nsec = CoveringNsec(zone, *wc);
        if (wc_nsec.has_value() && nsec.has_value() &&
            !(wc_nsec->name == nsec->name)) {
          AppendWithSigs(zone, *wc_nsec, true, response.authorities);
        }
      }
    }
  }

  // Additional-section processing: addresses for NS/MX/SRV targets named in
  // answer/authority (RFC 1034 §4.3.2 step 6), skipping duplicates.
  auto add_target_addresses = [&](const dns::Name& target) {
    for (dns::RRType type : {dns::RRType::kA, dns::RRType::kAAAA}) {
      const dns::RRset* addr = zone.FindRRset(target, type);
      if (addr == nullptr) continue;
      bool already = false;
      for (const auto& rr : response.additionals) {
        if (rr.name == target && rr.type == type) {
          already = true;
          break;
        }
      }
      if (!already) AppendWithSigs(zone, *addr, include_dnssec,
                                   response.additionals);
    }
  };
  for (const auto& rr : response.answers) {
    if (const auto* ns = std::get_if<dns::NsRdata>(&rr.rdata)) {
      add_target_addresses(ns->nsdname);
    } else if (const auto* mx = std::get_if<dns::MxRdata>(&rr.rdata)) {
      add_target_addresses(mx->exchange);
    } else if (const auto* srv = std::get_if<dns::SrvRdata>(&rr.rdata)) {
      add_target_addresses(srv->target);
    }
  }

  return response;
}

}  // namespace ldp::zone
