// Authoritative lookup (RFC 1034 §4.3.2): exact answers, CNAME chasing
// within the zone, wildcard synthesis (RFC 4592), referrals at zone cuts
// with glue, and negative answers (NXDOMAIN / NODATA with SOA).
//
// This is the algorithm whose *absence of shortcuts* LDplayer's hierarchy
// emulation depends on: a query that crosses a zone cut must produce a
// referral, never a direct answer from a deeper zone.
#ifndef LDPLAYER_ZONE_LOOKUP_H
#define LDPLAYER_ZONE_LOOKUP_H

#include <vector>

#include "dns/message.h"
#include "zone/zone.h"

namespace ldp::zone {

enum class LookupOutcome {
  kAnswer,      // exact or wildcard data in answers
  kCname,       // answers hold a CNAME chain; final target may be off-zone
  kDelegation,  // authority holds the cut's NS, additional holds glue
  kNoData,      // name exists (or is an empty non-terminal), type does not
  kNxDomain,    // name does not exist
  kNotInZone,   // qname is outside this zone entirely
};

struct LookupResult {
  LookupOutcome outcome = LookupOutcome::kNotInZone;
  std::vector<dns::RRset> answers;
  std::vector<dns::RRset> authority;
  std::vector<dns::RRset> additional;
  bool wildcard = false;  // answer was synthesized from a wildcard
};

LookupResult Lookup(const Zone& zone, const dns::Name& qname,
                    dns::RRType qtype);

// Builds a complete response message for `query` from `zone`: sets
// AA/rcode/sections per the lookup outcome. When `include_dnssec` is false,
// RRSIG records are stripped from all sections (how a server answers
// DO=0 queries from a signed zone).
dns::Message BuildResponse(const Zone& zone, const dns::Message& query,
                           bool include_dnssec);

}  // namespace ldp::zone

#endif  // LDPLAYER_ZONE_LOOKUP_H
