#include "zone/manifest.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "zone/masterfile.h"

namespace ldp::zone {
namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string JoinPath(const std::string& base_dir, const std::string& path) {
  if (base_dir.empty() || (!path.empty() && path.front() == '/')) return path;
  return base_dir + "/" + path;
}

}  // namespace

Result<ViewManifest> ParseViewManifest(std::string_view text) {
  ViewManifest manifest;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start, end == std::string_view::npos ? text.size() - start
                                             : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    auto tokens = Tokenize(line);
    if (tokens.empty()) continue;

    auto error = [&](const std::string& what) {
      return Error(ErrorCode::kParseError,
                   "views manifest line " + std::to_string(line_no) + ": " +
                       what);
    };

    if (tokens[0] == "default") {
      if (tokens.size() < 2) return error("default needs zone files");
      manifest.default_zone_files.insert(manifest.default_zone_files.end(),
                                         tokens.begin() + 1, tokens.end());
      continue;
    }
    if (tokens[0] != "view") {
      return error("expected 'view' or 'default', got '" + tokens[0] + "'");
    }
    if (tokens.size() < 4) {
      return error("view needs a name, >=1 address, >=1 zone file");
    }
    ViewSpec spec;
    spec.name = tokens[1];
    size_t i = 2;
    for (; i < tokens.size(); ++i) {
      auto addr = IpAddress::Parse(tokens[i]);
      if (!addr.ok()) break;  // first non-address starts the file list
      spec.sources.push_back(*addr);
    }
    if (spec.sources.empty()) return error("view has no source addresses");
    if (i == tokens.size()) return error("view has no zone files");
    spec.zone_files.assign(tokens.begin() + static_cast<ptrdiff_t>(i),
                           tokens.end());
    manifest.views.push_back(std::move(spec));
  }
  return manifest;
}

Result<ViewManifest> LoadViewManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error(ErrorCode::kIoError, "cannot open views manifest " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto manifest = ParseViewManifest(buffer.str());
  if (!manifest.ok()) return manifest.error().WithContext(path);
  return manifest;
}

std::string SerializeViewManifest(const ViewManifest& manifest) {
  std::ostringstream out;
  for (const auto& view : manifest.views) {
    out << "view " << view.name;
    for (IpAddress source : view.sources) out << ' ' << source.ToString();
    for (const auto& file : view.zone_files) out << ' ' << file;
    out << '\n';
  }
  if (!manifest.default_zone_files.empty()) {
    out << "default";
    for (const auto& file : manifest.default_zone_files) out << ' ' << file;
    out << '\n';
  }
  return out.str();
}

Status SaveViewManifest(const ViewManifest& manifest,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Error(ErrorCode::kIoError, "cannot write views manifest " + path);
  }
  out << SerializeViewManifest(manifest);
  out.close();
  if (!out) return Error(ErrorCode::kIoError, "short write to " + path);
  return Status::Ok();
}

std::vector<IpAddress> ManifestSources(const ViewManifest& manifest) {
  std::vector<IpAddress> sources;
  std::unordered_set<IpAddress> seen;
  for (const auto& view : manifest.views) {
    for (IpAddress source : view.sources) {
      if (seen.insert(source).second) sources.push_back(source);
    }
  }
  return sources;
}

Result<std::shared_ptr<const ViewTable>> BuildViewTable(
    const ViewManifest& manifest, const std::string& base_dir) {
  auto load_set = [&](const std::vector<std::string>& files)
      -> Result<ZoneSet> {
    ZoneSet set;
    for (const auto& file : files) {
      auto zone = LoadMasterFile(JoinPath(base_dir, file),
                                 MasterFileOptions{});
      if (!zone.ok()) return zone.error().WithContext(file);
      LDP_RETURN_IF_ERROR(
          set.AddZone(std::make_shared<Zone>(std::move(*zone))));
    }
    return set;
  };

  auto table = std::make_shared<ViewTable>();
  for (const auto& view : manifest.views) {
    LDP_ASSIGN_OR_RETURN(ZoneSet zones, load_set(view.zone_files));
    LDP_RETURN_IF_ERROR(
        table->AddView(view.name, view.sources, std::move(zones)));
  }
  if (!manifest.default_zone_files.empty()) {
    LDP_ASSIGN_OR_RETURN(ZoneSet zones,
                         load_set(manifest.default_zone_files));
    table->SetDefaultView(std::move(zones));
  }
  return std::shared_ptr<const ViewTable>(std::move(table));
}

}  // namespace ldp::zone
