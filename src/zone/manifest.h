// Views manifest: a small text format tying split-horizon views to zone
// files on disk, shared by ldp_serve (--views), ldp_proxy (which binds the
// view source addresses), and ldp_zone_tool hierarchy (which writes one).
//
//   # comment
//   view root 198.51.100.1 198.51.100.2 root.zone
//   view tld  198.51.101.1 com.zone org.zone
//   default catchall.zone
//
// A `view` line is NAME, then one or more IPv4 source addresses, then one
// or more zone files; the first token that does not parse as an address
// starts the file list. `default` lines fill the fallback view. Zone file
// paths are resolved relative to the manifest's directory.
#ifndef LDPLAYER_ZONE_MANIFEST_H
#define LDPLAYER_ZONE_MANIFEST_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/ip.h"
#include "common/result.h"
#include "zone/view.h"

namespace ldp::zone {

struct ViewSpec {
  std::string name;
  std::vector<IpAddress> sources;
  std::vector<std::string> zone_files;
};

struct ViewManifest {
  std::vector<ViewSpec> views;
  std::vector<std::string> default_zone_files;
};

Result<ViewManifest> ParseViewManifest(std::string_view text);
Result<ViewManifest> LoadViewManifest(const std::string& path);

// One `view`/`default` line per entry, addresses before files.
std::string SerializeViewManifest(const ViewManifest& manifest);
Status SaveViewManifest(const ViewManifest& manifest,
                        const std::string& path);

// Every source address across all views, in manifest order (duplicates
// removed). This is the address set a hierarchy proxy must impersonate.
std::vector<IpAddress> ManifestSources(const ViewManifest& manifest);

// Loads every referenced zone file (relative paths resolved against
// `base_dir`, "" = cwd) and assembles the ViewTable.
Result<std::shared_ptr<const ViewTable>> BuildViewTable(
    const ViewManifest& manifest, const std::string& base_dir);

}  // namespace ldp::zone

#endif  // LDPLAYER_ZONE_MANIFEST_H
