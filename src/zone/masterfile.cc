#include "zone/masterfile.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace ldp::zone {
namespace {

// Tokenizes one logical line, respecting quoted strings and stripping
// comments. Returns whether the line ends inside an open parenthesis group.
struct LineTokens {
  std::vector<std::string> tokens;
  bool continues = false;        // '(' seen without matching ')'
  bool owner_inherited = false;  // first physical line began with whitespace
};

// A legitimate token tops out at a `\# 65535 <hex>` generic-rdata blob
// (131070 hex characters); anything past this cap is hostile input, not a
// zone.
constexpr size_t kMaxTokenLength = 256 * 1024;

// True if the token ends with an odd number of backslashes, i.e. its final
// backslash escapes whatever comes next.
bool HasDanglingBackslash(std::string_view token) {
  size_t n = 0;
  while (n < token.size() && token[token.size() - 1 - n] == '\\') ++n;
  return (n % 2) == 1;
}

Status TokenizeInto(std::string_view line, LineTokens& out) {
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ';') break;  // comment to end of line
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '(') {
      out.continues = true;
      ++i;
      continue;
    }
    if (c == ')') {
      out.continues = false;
      ++i;
      continue;
    }
    if (c == '"') {
      std::string token = "\"";
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) {
            return Error(ErrorCode::kParseError,
                         "backslash at end of line inside quoted string");
          }
          token.push_back('\\');
          token.push_back(line[i + 1]);
          i += 2;
          continue;
        }
        token.push_back(line[i]);
        ++i;
      }
      if (i >= line.size()) {
        return Error(ErrorCode::kParseError, "unterminated quoted string");
      }
      ++i;  // closing quote
      token.push_back('"');
      if (token.size() > kMaxTokenLength) {
        return Error(ErrorCode::kParseError, "oversized token");
      }
      out.tokens.push_back(std::move(token));
      continue;
    }
    std::string token;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != ';' && line[i] != '(' && line[i] != ')' &&
           line[i] != '\r') {
      token.push_back(line[i]);
      ++i;
    }
    if (token.size() > kMaxTokenLength) {
      return Error(ErrorCode::kParseError, "oversized token");
    }
    if (i >= line.size() && HasDanglingBackslash(token)) {
      // The final backslash would escape the newline — a continuation we do
      // not support; rejecting beats silently dropping the escape.
      return Error(ErrorCode::kParseError, "trailing backslash at end of line");
    }
    out.tokens.push_back(std::move(token));
  }
  return Status::Ok();
}

// A name token: absolute if it ends with '.', otherwise relative to origin;
// '@' is the origin itself.
Result<dns::Name> ParseNameToken(std::string_view token,
                                 const dns::Name& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') {
    return dns::Name::Parse(token);
  }
  LDP_ASSIGN_OR_RETURN(dns::Name relative, dns::Name::Parse(token));
  // Append origin's labels.
  std::vector<std::string> labels = relative.labels();
  labels.insert(labels.end(), origin.labels().begin(), origin.labels().end());
  return dns::Name::FromLabels(std::move(labels));
}

bool IsTtlToken(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

Result<Zone> ParseMasterFile(std::string_view text,
                             const MasterFileOptions& options) {
  dns::Name origin = options.default_origin;
  uint32_t default_ttl = options.default_ttl;
  std::optional<Zone> zone;
  std::optional<dns::Name> last_owner;

  std::vector<LineTokens> logical_lines;
  {
    LineTokens current;
    size_t start = 0;
    while (start <= text.size()) {
      size_t nl = text.find('\n', start);
      std::string_view line = text.substr(
          start, nl == std::string_view::npos ? text.size() - start
                                              : nl - start);
      // The owner-inheritance decision belongs to the first physical line
      // that contributes tokens to this logical line.
      bool group_start = !current.continues && current.tokens.empty();
      LDP_RETURN_IF_ERROR(TokenizeInto(line, current));
      if (group_start && !current.tokens.empty()) {
        current.owner_inherited =
            !line.empty() && (line[0] == ' ' || line[0] == '\t');
      }
      if (!current.continues) {
        if (!current.tokens.empty()) {
          logical_lines.push_back(std::move(current));
        }
        current = LineTokens{};
      }
      if (nl == std::string_view::npos) break;
      start = nl + 1;
    }
  }

  for (auto& line : logical_lines) {
    auto& tokens = line.tokens;
    const bool owner_inherited = line.owner_inherited;

    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        return Error(ErrorCode::kParseError, "$ORIGIN needs one argument");
      }
      LDP_ASSIGN_OR_RETURN(origin, dns::Name::Parse(tokens[1]));
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2) {
        return Error(ErrorCode::kParseError, "$TTL needs one argument");
      }
      LDP_ASSIGN_OR_RETURN(uint64_t ttl, ParseUint64(tokens[1]));
      if (ttl > 0xffffffffu) {
        return Error(ErrorCode::kOutOfRange, "$TTL exceeds 32 bits");
      }
      default_ttl = static_cast<uint32_t>(ttl);
      continue;
    }
    if (tokens[0].size() > 1 && tokens[0][0] == '$') {
      return Error(ErrorCode::kUnsupported,
                   "unsupported directive: " + tokens[0]);
    }

    size_t cursor = 0;
    dns::Name owner;
    if (owner_inherited) {
      if (!last_owner.has_value()) {
        return Error(ErrorCode::kParseError,
                     "record with inherited owner before any owner");
      }
      owner = *last_owner;
    } else {
      LDP_ASSIGN_OR_RETURN(owner, ParseNameToken(tokens[cursor], origin));
      ++cursor;
    }
    last_owner = owner;

    // [TTL] [class] type — TTL and class may appear in either order.
    uint32_t ttl = default_ttl;
    dns::RRClass klass = dns::RRClass::kIN;
    for (int pass = 0; pass < 2 && cursor < tokens.size(); ++pass) {
      if (IsTtlToken(tokens[cursor])) {
        LDP_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(tokens[cursor]));
        if (value > 0xffffffffu) {
          return Error(ErrorCode::kOutOfRange, "TTL exceeds 32 bits");
        }
        ttl = static_cast<uint32_t>(value);
        ++cursor;
      } else if (dns::RRClassFromString(tokens[cursor]).ok()) {
        klass = dns::RRClassFromString(tokens[cursor]).value();
        ++cursor;
      }
    }
    if (cursor >= tokens.size()) {
      return Error(ErrorCode::kParseError, "record missing type");
    }
    LDP_ASSIGN_OR_RETURN(dns::RRType type, dns::RRTypeFromString(tokens[cursor]));
    ++cursor;

    // Remaining tokens are rdata. Relative names inside rdata are resolved
    // against the origin by pre-qualifying name-ish fields: we rely on
    // RdataFromText for typed parsing, so qualify tokens that look like
    // relative names for the name-bearing types.
    std::vector<std::string> qualified;
    std::vector<std::string_view> rdata_tokens;
    qualified.reserve(tokens.size() - cursor);
    auto qualify_indices = [&]() -> std::vector<size_t> {
      switch (type) {
        case dns::RRType::kNS:
        case dns::RRType::kCNAME:
        case dns::RRType::kPTR:
          return {0};
        case dns::RRType::kMX:
          return {1};
        case dns::RRType::kSOA:
          return {0, 1};
        case dns::RRType::kSRV:
          return {3};
        case dns::RRType::kRRSIG:
          return {7};
        case dns::RRType::kNSEC:
          return {0};
        default:
          return {};
      }
    }();
    for (size_t i = cursor; i < tokens.size(); ++i) {
      std::string token = tokens[i];
      for (size_t qi : qualify_indices) {
        if (i - cursor == qi && !token.empty() && token.back() != '.' &&
            token[0] != '"') {
          if (token == "@") {
            token = origin.ToString();
          } else {
            auto name = ParseNameToken(token, origin);
            if (name.ok()) token = name->ToString();
          }
        }
      }
      qualified.push_back(std::move(token));
    }
    for (const auto& t : qualified) rdata_tokens.push_back(t);

    auto rdata = dns::RdataFromText(type, rdata_tokens);
    if (!rdata.ok()) {
      return rdata.error().WithContext("owner " + owner.ToString());
    }

    if (!zone.has_value()) {
      // Zone origin: the SOA owner if this is the first record, else the
      // current $ORIGIN.
      zone.emplace(type == dns::RRType::kSOA ? owner : origin);
    }
    dns::ResourceRecord record{owner, type, klass, ttl, std::move(*rdata)};
    LDP_RETURN_IF_ERROR(zone->AddRecord(record));
  }

  if (!zone.has_value()) {
    return Error(ErrorCode::kParseError, "master file contains no records");
  }
  return std::move(*zone);
}

Result<Zone> LoadMasterFile(const std::string& path,
                            const MasterFileOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Error(ErrorCode::kIoError, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseMasterFile(buffer.str(), options);
}

std::string SerializeZone(const Zone& zone) {
  std::string out = "$ORIGIN " + zone.origin().ToString() + "\n";
  const dns::RRset* soa = zone.Soa();
  if (soa != nullptr) {
    for (const auto& record : soa->ToRecords()) {
      out += record.ToText() + "\n";
    }
  }
  zone.ForEachRRset([&](const dns::RRset& rrset) {
    if (rrset.type == dns::RRType::kSOA && rrset.name == zone.origin()) {
      return;  // already emitted first
    }
    for (const auto& record : rrset.ToRecords()) {
      out += record.ToText() + "\n";
    }
  });
  return out;
}

Status SaveMasterFile(const Zone& zone, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Error(ErrorCode::kIoError, "cannot open " + path + " for writing");
  }
  out << SerializeZone(zone);
  if (!out) {
    return Error(ErrorCode::kIoError, "write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace ldp::zone
