// Master-file (RFC 1035 §5) parser and serializer: $ORIGIN/$TTL directives,
// '@', relative names, parenthesized continuations, ';' comments, inherited
// owner names and TTLs. The zone constructor emits this format and the
// server loads it, mirroring LDplayer's reusable zone-file workflow (§2.3).
#ifndef LDPLAYER_ZONE_MASTERFILE_H
#define LDPLAYER_ZONE_MASTERFILE_H

#include <string>
#include <string_view>

#include "common/result.h"
#include "zone/zone.h"

namespace ldp::zone {

struct MasterFileOptions {
  // Origin used when the file has no $ORIGIN directive.
  dns::Name default_origin;
  // TTL used when neither $TTL nor an explicit TTL is present.
  uint32_t default_ttl = 3600;
};

// Parses a whole master file into a Zone rooted at the (first) origin.
Result<Zone> ParseMasterFile(std::string_view text,
                             const MasterFileOptions& options);

// Convenience: read from disk.
Result<Zone> LoadMasterFile(const std::string& path,
                            const MasterFileOptions& options);

// Serializes a zone as a master file ($ORIGIN + fully-qualified records in
// canonical order; SOA first).
std::string SerializeZone(const Zone& zone);

Status SaveMasterFile(const Zone& zone, const std::string& path);

}  // namespace ldp::zone

#endif  // LDPLAYER_ZONE_MASTERFILE_H
