#include "zone/view.h"

namespace ldp::zone {

Status ZoneSet::AddZone(ZonePtr zone) {
  if (zone == nullptr) {
    return Error(ErrorCode::kInvalidArgument, "null zone");
  }
  auto [it, inserted] = zones_.emplace(zone->origin(), std::move(zone));
  if (!inserted) {
    return Error(ErrorCode::kAlreadyExists,
                 "zone already present: " + it->first.ToString());
  }
  return Status::Ok();
}

const Zone* ZoneSet::FindBestZone(const dns::Name& qname) const {
  // Walk the ancestor chain from qname to the root; the first hit is the
  // deepest origin. O(labels) hash lookups.
  dns::Name current = qname;
  while (true) {
    auto it = zones_.find(current);
    if (it != zones_.end()) return it->second.get();
    if (current.IsRoot()) return nullptr;
    current = *current.Parent();
  }
}

ZonePtr ZoneSet::FindZone(const dns::Name& origin) const {
  auto it = zones_.find(origin);
  return it == zones_.end() ? nullptr : it->second;
}

std::vector<dns::Name> ZoneSet::Origins() const {
  std::vector<dns::Name> out;
  out.reserve(zones_.size());
  for (const auto& [origin, zone] : zones_) out.push_back(origin);
  return out;
}

size_t ZoneSet::TotalMemoryFootprint() const {
  size_t total = 0;
  for (const auto& [origin, zone] : zones_) {
    total += zone->MemoryFootprint();
  }
  return total;
}

Status ViewTable::AddView(std::string name,
                          const std::vector<IpAddress>& sources,
                          ZoneSet zones) {
  size_t index = views_.size();
  for (const IpAddress& source : sources) {
    auto [it, inserted] = source_to_view_.emplace(source, index);
    if (!inserted) {
      return Error(ErrorCode::kAlreadyExists,
                   "source " + source.ToString() + " already matches view " +
                       views_[it->second].name);
    }
  }
  views_.push_back(View{std::move(name), std::move(zones)});
  return Status::Ok();
}

const ZoneSet* ViewTable::Match(const IpAddress& source) const {
  auto it = source_to_view_.find(source);
  if (it != source_to_view_.end()) return &views_[it->second].zones;
  return &default_view_;
}

}  // namespace ldp::zone
