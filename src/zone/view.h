// Split-horizon DNS (paper §2.4): the meta-DNS-server hosts many zones on
// one listener and selects the zone by the *source address* of the query —
// which, after the recursive proxy's rewrite, is the original query
// destination address (OQDA), i.e. the public address of the nameserver the
// recursive believed it was asking.
#ifndef LDPLAYER_ZONE_VIEW_H
#define LDPLAYER_ZONE_VIEW_H

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ip.h"
#include "common/result.h"
#include "zone/zone.h"

namespace ldp::zone {

// A set of zones served together; the deepest origin containing the qname
// answers (longest-suffix match, like a server with several zone clauses).
class ZoneSet {
 public:
  Status AddZone(ZonePtr zone);

  // The zone whose origin is the longest ancestor of `qname`, or nullptr.
  const Zone* FindBestZone(const dns::Name& qname) const;
  ZonePtr FindZone(const dns::Name& origin) const;

  size_t zone_count() const { return zones_.size(); }
  std::vector<dns::Name> Origins() const;
  size_t TotalMemoryFootprint() const;

 private:
  std::unordered_map<dns::Name, ZonePtr> zones_;  // keyed by origin
};

// BIND-style views with match-clients lists of explicit addresses. The
// LDplayer deployment gives every zone's nameserver addresses their own
// view, so the OQDA uniquely selects the level of the hierarchy.
class ViewTable {
 public:
  // Adds a view matching the given source addresses. Address collisions
  // across views are an error: they would make zone selection ambiguous —
  // exactly the failure the paper's design avoids.
  Status AddView(std::string name, const std::vector<IpAddress>& sources,
                 ZoneSet zones);

  // Fallback when no view matches (BIND: match-clients { any; }).
  void SetDefaultView(ZoneSet zones) { default_view_ = std::move(zones); }

  // The zone set for this query source, or the default view.
  const ZoneSet* Match(const IpAddress& source) const;

  size_t view_count() const { return views_.size(); }

 private:
  struct View {
    std::string name;
    ZoneSet zones;
  };
  std::vector<View> views_;
  std::unordered_map<IpAddress, size_t> source_to_view_;
  ZoneSet default_view_;
};

}  // namespace ldp::zone

#endif  // LDPLAYER_ZONE_VIEW_H
