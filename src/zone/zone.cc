#include "zone/zone.h"

#include <algorithm>
#include <functional>

namespace ldp::zone {

Status Zone::AddRecord(const dns::ResourceRecord& record) {
  if (!record.name.IsSubdomainOf(origin_)) {
    return Error(ErrorCode::kInvalidArgument,
                 record.name.ToString() + " is outside zone " +
                     origin_.ToString());
  }
  Node& node = nodes_[record.name];
  auto [it, inserted] = node.try_emplace(record.type);
  dns::RRset& rrset = it->second;
  if (inserted) {
    rrset.name = record.name;
    rrset.type = record.type;
    rrset.klass = record.klass;
    rrset.ttl = record.ttl;
  }
  if (std::find(rrset.rdatas.begin(), rrset.rdatas.end(), record.rdata) !=
      rrset.rdatas.end()) {
    return Status::Ok();  // duplicate rdata: set semantics
  }
  rrset.rdatas.push_back(record.rdata);
  ++record_count_;
  return Status::Ok();
}

Status Zone::AddRRset(const dns::RRset& rrset) {
  for (const auto& record : rrset.ToRecords()) {
    LDP_RETURN_IF_ERROR(AddRecord(record));
  }
  return Status::Ok();
}

const dns::RRset* Zone::FindRRset(const dns::Name& name,
                                  dns::RRType type) const {
  auto node_it = nodes_.find(name);
  if (node_it == nodes_.end()) return nullptr;
  auto rrset_it = node_it->second.find(type);
  if (rrset_it == node_it->second.end()) return nullptr;
  return &rrset_it->second;
}

std::vector<const dns::RRset*> Zone::FindNode(const dns::Name& name) const {
  std::vector<const dns::RRset*> out;
  auto node_it = nodes_.find(name);
  if (node_it == nodes_.end()) return out;
  out.reserve(node_it->second.size());
  for (const auto& [type, rrset] : node_it->second) out.push_back(&rrset);
  return out;
}

bool Zone::IsEmptyNonTerminal(const dns::Name& name) const {
  if (nodes_.count(name)) return false;
  // In canonical order every descendant of `name` sorts after it, so the
  // first stored name >= `name` is a descendant iff any descendant exists.
  auto it = nodes_.lower_bound(name);
  return it != nodes_.end() && it->first.IsSubdomainOf(name);
}

std::vector<dns::Name> Zone::DelegationPoints() const {
  std::vector<dns::Name> cuts;
  for (const auto& [name, node] : nodes_) {
    if (name == origin_) continue;
    if (node.count(dns::RRType::kNS)) cuts.push_back(name);
  }
  return cuts;
}

const dns::RRset* Zone::FindPredecessorWithType(const dns::Name& name,
                                                dns::RRType type) const {
  auto it = nodes_.upper_bound(name);
  while (it != nodes_.begin()) {
    --it;
    auto rrset_it = it->second.find(type);
    if (rrset_it != it->second.end()) return &rrset_it->second;
  }
  return nullptr;
}

void Zone::ForEachRRset(
    const std::function<void(const dns::RRset&)>& visit) const {
  for (const auto& [name, node] : nodes_) {
    for (const auto& [type, rrset] : node) visit(rrset);
  }
}

Status Zone::Validate() const {
  if (Soa() == nullptr) {
    return Error(ErrorCode::kInvalidArgument,
                 "zone " + origin_.ToString() + " lacks a SOA record");
  }
  if (ApexNs() == nullptr) {
    return Error(ErrorCode::kInvalidArgument,
                 "zone " + origin_.ToString() + " lacks apex NS records");
  }
  return Status::Ok();
}

size_t Zone::MemoryFootprint() const {
  size_t bytes = 0;
  for (const auto& [name, node] : nodes_) {
    bytes += name.WireLength() + sizeof(Node);
    for (const auto& [type, rrset] : node) {
      bytes += sizeof(dns::RRset);
      for (const auto& rdata : rrset.rdatas) {
        bytes += dns::RdataWireLength(rdata) + sizeof(dns::Rdata);
      }
    }
  }
  return bytes;
}

}  // namespace ldp::zone
