// Authoritative zone data: a name → (type → RRset) map in canonical DNS
// order, with the apex bookkeeping a server needs (SOA, apex NS, zone cuts).
#ifndef LDPLAYER_ZONE_ZONE_H
#define LDPLAYER_ZONE_ZONE_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dns/name.h"
#include "dns/rr.h"

namespace ldp::zone {

class Zone {
 public:
  explicit Zone(dns::Name origin) : origin_(std::move(origin)) {}

  const dns::Name& origin() const { return origin_; }

  // Merges a record into its RRset. Records outside the origin are rejected;
  // duplicate rdata is dropped silently (DNS sets have set semantics). The
  // RRset TTL is the first record's TTL.
  Status AddRecord(const dns::ResourceRecord& record);
  Status AddRRset(const dns::RRset& rrset);

  // nullptr when absent.
  const dns::RRset* FindRRset(const dns::Name& name, dns::RRType type) const;
  // All RRsets at a name (empty when the node does not exist).
  std::vector<const dns::RRset*> FindNode(const dns::Name& name) const;
  bool HasNode(const dns::Name& name) const { return nodes_.count(name) > 0; }

  // True if `name` does not exist but some existing name is below it —
  // an empty non-terminal, which must answer NODATA rather than NXDOMAIN.
  bool IsEmptyNonTerminal(const dns::Name& name) const;

  const dns::RRset* Soa() const { return FindRRset(origin_, dns::RRType::kSOA); }
  const dns::RRset* ApexNs() const {
    return FindRRset(origin_, dns::RRType::kNS);
  }

  // Names with NS RRsets strictly below the apex: the zone's cuts.
  std::vector<dns::Name> DelegationPoints() const;

  // The RRset of `type` at the canonically greatest owner name <= `name`
  // that has one, or nullptr. Drives covering-NSEC selection for DNSSEC
  // denial of existence.
  const dns::RRset* FindPredecessorWithType(const dns::Name& name,
                                            dns::RRType type) const;

  size_t record_count() const { return record_count_; }
  size_t node_count() const { return nodes_.size(); }

  // Visits RRsets in canonical order.
  void ForEachRRset(
      const std::function<void(const dns::RRset&)>& visit) const;

  // A zone is servable when it has a SOA and apex NS set.
  Status Validate() const;

  // Estimated in-memory footprint in bytes (names + rdata), used by the
  // hierarchy-emulation ablation bench.
  size_t MemoryFootprint() const;

 private:
  using Node = std::map<dns::RRType, dns::RRset>;

  dns::Name origin_;
  std::map<dns::Name, Node> nodes_;  // canonical order (dns::Name::operator<)
  size_t record_count_ = 0;
};

using ZonePtr = std::shared_ptr<Zone>;

}  // namespace ldp::zone

#endif  // LDPLAYER_ZONE_ZONE_H
