#include "zoneconstruct/axfr_client.h"

#include <memory>

#include "dns/framing.h"
#include "dns/message.h"
#include "sim/tcp.h"

namespace ldp::zoneconstruct {
namespace {

struct TransferState {
  std::unique_ptr<sim::SimTcpStack> stack;
  dns::StreamAssembler assembler;
  std::optional<zone::Zone> zone;
  dns::Name origin;
  uint16_t query_id = 0;
  size_t soa_seen = 0;  // transfer completes on the second SOA
  bool done = false;
  TransferCallback callback;

  void Finish(Result<zone::Zone> result) {
    if (done) return;
    done = true;
    if (callback) callback(std::move(result));
  }
};

}  // namespace

void TransferZone(sim::SimNetwork& net, IpAddress client, Endpoint server,
                  const dns::Name& origin, TransferCallback callback) {
  auto state = std::make_shared<TransferState>();
  state->origin = origin;
  state->callback = std::move(callback);
  state->stack = std::make_unique<sim::SimTcpStack>(net, client);
  state->query_id = 0xabcd;

  sim::ConnCallbacks callbacks;
  callbacks.on_established = [state](sim::SimTcpConnection& conn) {
    dns::Message query;
    query.id = state->query_id;
    query.questions.push_back(dns::Question{state->origin,
                                            dns::RRType::kAXFR,
                                            dns::RRClass::kIN});
    conn.Send(std::move(dns::FrameMessage(query.Encode())).value());
  };
  callbacks.on_data = [state](sim::SimTcpConnection& conn,
                              std::span<const uint8_t> data) {
    if (state->done) return;
    if (!state->assembler.Feed(data).ok()) {
      state->Finish(Error(ErrorCode::kParseError, "bad AXFR framing"));
      conn.Close();
      return;
    }
    while (auto wire = state->assembler.NextMessage()) {
      auto message = dns::Message::Decode(*wire);
      if (!message.ok()) {
        state->Finish(message.error().WithContext("AXFR message"));
        conn.Close();
        return;
      }
      if (message->rcode != dns::Rcode::kNoError) {
        state->Finish(Error(
            ErrorCode::kNotFound,
            "AXFR refused: " +
                std::string(dns::RcodeToString(message->rcode))));
        conn.Close();
        return;
      }
      for (const auto& record : message->answers) {
        if (record.type == dns::RRType::kSOA &&
            record.name == state->origin) {
          ++state->soa_seen;
          if (state->soa_seen == 2) {
            conn.Close();
            state->Finish(std::move(*state->zone));
            return;
          }
        }
        if (!state->zone.has_value()) {
          state->zone.emplace(state->origin);
        }
        auto added = state->zone->AddRecord(record);
        if (!added.ok()) {
          state->Finish(added.error().WithContext("AXFR record"));
          conn.Close();
          return;
        }
      }
    }
  };
  callbacks.on_close = [state](sim::SimTcpConnection&) {
    state->Finish(
        Error(ErrorCode::kConnectionClosed, "transfer connection closed"));
  };

  auto conn = state->stack->Connect(server, callbacks, /*tls=*/false);
  if (!conn.ok()) {
    state->Finish(conn.error());
  }
}

Result<zone::Zone> TransferZoneSync(sim::SimNetwork& net, IpAddress client,
                                    Endpoint server,
                                    const dns::Name& origin) {
  std::optional<Result<zone::Zone>> result;
  TransferZone(net, client, server, origin,
               [&result](Result<zone::Zone> outcome) {
                 result = std::move(outcome);
               });
  net.simulator().Run();
  if (!result.has_value()) {
    return Error(ErrorCode::kTimeout, "transfer never completed");
  }
  return std::move(*result);
}

}  // namespace ldp::zoneconstruct
