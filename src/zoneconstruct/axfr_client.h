// AXFR client over the simulated network: "when emulating an authoritative
// server, we can often acquire the zone from its manager" (paper §2.3) —
// this is that acquisition path. Opens a TCP connection, requests the zone,
// reassembles the SOA-to-SOA record stream, and builds a Zone.
#ifndef LDPLAYER_ZONECONSTRUCT_AXFR_CLIENT_H
#define LDPLAYER_ZONECONSTRUCT_AXFR_CLIENT_H

#include <functional>

#include "sim/network.h"
#include "zone/zone.h"

namespace ldp::zoneconstruct {

using TransferCallback = std::function<void(Result<zone::Zone>)>;

// Starts an asynchronous zone transfer; the callback fires when the
// terminal SOA arrives (or on refusal/connection loss). The caller runs
// the simulator. `client` must be a host address not already running a
// TCP stack in this network.
void TransferZone(sim::SimNetwork& net, IpAddress client, Endpoint server,
                  const dns::Name& origin, TransferCallback callback);

// Convenience: runs the simulation to completion and returns the zone.
Result<zone::Zone> TransferZoneSync(sim::SimNetwork& net, IpAddress client,
                                    Endpoint server, const dns::Name& origin);

}  // namespace ldp::zoneconstruct

#endif  // LDPLAYER_ZONECONSTRUCT_AXFR_CLIENT_H
