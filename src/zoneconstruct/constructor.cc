#include "zoneconstruct/constructor.h"

#include <algorithm>

#include "common/log.h"

namespace ldp::zoneconstruct {
namespace {

// A deterministic fake-but-valid SOA for zones whose traces never exposed
// one (regular resolution rarely asks for SOA, paper §2.3 "Recover Missing
// Data").
dns::ResourceRecord SynthesizeSoa(const dns::Name& origin) {
  dns::SoaRdata soa;
  soa.mname = origin.IsRoot() ? *dns::Name::Parse("ns.synthesized")
                              : *origin.Child("ns-synth");
  soa.rname = origin.IsRoot() ? *dns::Name::Parse("hostmaster.synthesized")
                              : *origin.Child("hostmaster");
  soa.serial = 1;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = 300;
  return dns::ResourceRecord{origin, dns::RRType::kSOA, dns::RRClass::kIN,
                             3600, std::move(soa)};
}

}  // namespace

Result<zone::ViewTable> ConstructionResult::BuildViews() const {
  zone::ViewTable views;
  for (const auto& zone : zones) {
    auto ns_it = zone_nameservers.find(zone->origin());
    if (ns_it == zone_nameservers.end() || ns_it->second.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   "no nameserver addresses for zone " +
                       zone->origin().ToString());
    }
    zone::ZoneSet set;
    LDP_RETURN_IF_ERROR(set.AddZone(zone));
    LDP_RETURN_IF_ERROR(views.AddView(zone->origin().ToString(),
                                      ns_it->second, std::move(set)));
  }
  return views;
}

void ZoneConstructor::AddResponse(IpAddress server,
                                  const dns::Message& response) {
  size_t response_id = response_count_++;
  auto harvest = [&](const std::vector<dns::ResourceRecord>& section) {
    for (const auto& record : section) {
      if (record.type == dns::RRType::kOPT) continue;
      records_.push_back(SourcedRecord{record, server, response_id});
    }
  };
  harvest(response.answers);
  harvest(response.authorities);
  harvest(response.additionals);
}

Result<ConstructionResult> ZoneConstructor::Build() {
  ConstructionResult result;
  result.responses_harvested = response_count_;

  // --- Step 1: scan for NS records and nameserver addresses. ---
  // domain -> nameserver names (zone cuts, including apexes)
  std::map<dns::Name, std::unordered_set<std::string>> domain_ns;
  // nameserver name -> addresses
  std::unordered_map<dns::Name, std::unordered_set<IpAddress>> ns_addresses;
  for (const auto& sourced : records_) {
    const auto& record = sourced.record;
    if (record.type == dns::RRType::kNS) {
      const auto& ns = std::get<dns::NsRdata>(record.rdata);
      domain_ns[record.name].insert(ns.nsdname.CanonicalKey());
      // Remember the name for address mapping below.
      ns_addresses.try_emplace(ns.nsdname);
    }
  }
  for (const auto& sourced : records_) {
    const auto& record = sourced.record;
    if (record.type == dns::RRType::kA) {
      auto it = ns_addresses.find(record.name);
      if (it != ns_addresses.end()) {
        it->second.insert(std::get<dns::ARdata>(record.rdata).address);
      }
    }
  }
  if (domain_ns.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "no NS records in harvested responses; cannot identify zones");
  }

  // --- Step 2: group nameservers per domain; the group's addresses are
  // the servers whose responses belong to that zone's data. ---
  // zone origin -> the set of addresses serving it
  std::map<dns::Name, std::unordered_set<IpAddress>> zone_servers;
  for (const auto& [domain, ns_names] : domain_ns) {
    auto& servers = zone_servers[domain];
    for (const auto& [ns_name, addrs] : ns_addresses) {
      if (ns_names.count(ns_name.CanonicalKey())) {
        servers.insert(addrs.begin(), addrs.end());
      }
    }
  }

  // --- Step 3: split records to zones at zone cuts. A record from server
  // S belongs to the deepest known cut Z above it with S in Z's group. ---
  std::map<dns::Name, zone::ZonePtr> zones;
  auto get_zone = [&](const dns::Name& origin) -> zone::Zone& {
    auto it = zones.find(origin);
    if (it == zones.end()) {
      it = zones.emplace(origin, std::make_shared<zone::Zone>(origin)).first;
    }
    return *it->second;
  };

  // First-answer-wins: remember which response first defined (name, type)
  // and drop differing later data (paper: "choose the first answer").
  struct OwnerKey {
    std::string name_key;
    dns::RRType type;
    std::string zone_key;
    bool operator==(const OwnerKey&) const = default;
  };
  struct OwnerKeyHash {
    size_t operator()(const OwnerKey& k) const {
      return std::hash<std::string>()(k.name_key) * 131 +
             static_cast<uint16_t>(k.type) * 31 +
             std::hash<std::string>()(k.zone_key);
    }
  };
  std::unordered_map<OwnerKey, size_t, OwnerKeyHash> first_response;

  auto assign = [&](const SourcedRecord& sourced, const dns::Name& origin) {
    OwnerKey key{sourced.record.name.CanonicalKey(), sourced.record.type,
                 origin.CanonicalKey()};
    auto [it, inserted] = first_response.emplace(key, sourced.response_id);
    if (!inserted && it->second != sourced.response_id) {
      // A different response already defined this RRset. Accept only data
      // identical to what is present (set semantics absorb it); otherwise
      // count a conflict and keep the first answer.
      zone::Zone& zone = get_zone(origin);
      const dns::RRset* existing =
          zone.FindRRset(sourced.record.name, sourced.record.type);
      if (existing != nullptr &&
          std::find(existing->rdatas.begin(), existing->rdatas.end(),
                    sourced.record.rdata) == existing->rdatas.end()) {
        ++result.conflicts_dropped;
        return;
      }
      if (existing == nullptr) return;  // first answer chose another zone
    }
    auto status = get_zone(origin).AddRecord(sourced.record);
    if (!status.ok()) {
      LDP_DEBUG << "record rejected during reconstruction: "
                << status.error().ToString();
    }
  };

  for (const auto& sourced : records_) {
    const auto& record = sourced.record;

    // Deepest cut at-or-above the owner whose server group includes the
    // responding server.
    dns::Name walk = record.name;
    std::optional<dns::Name> home;
    while (true) {
      auto zs = zone_servers.find(walk);
      if (zs != zone_servers.end() && zs->second.count(sourced.server)) {
        home = walk;
        break;
      }
      if (walk.IsRoot()) break;
      walk = *walk.Parent();
    }
    if (!home.has_value()) {
      // The responding server serves no zone above this owner (pure glue
      // from a parent, e.g. com's servers answering ns1.example.com):
      // attribute it to the deepest cut above the owner that the server
      // serves anything under. Fall back: skip.
      continue;
    }

    if (record.type == dns::RRType::kNS) {
      // NS at a cut: delegation in the parent-side zone AND the apex set
      // of the child zone (the paper's child zones re-use the referral).
      bool is_cut = domain_ns.count(record.name) > 0;
      if (is_cut && !(record.name == *home)) {
        assign(sourced, *home);           // delegation in parent zone
        assign(sourced, record.name);     // apex NS of the child zone
        continue;
      }
    }
    assign(sourced, *home);

    // Glue below a cut also seeds the child zone (the nameserver's own
    // address record inside its zone).
    if (record.type == dns::RRType::kA || record.type == dns::RRType::kAAAA) {
      for (const auto& [domain, servers] : zone_servers) {
        if (!(domain == *home) && record.name.IsSubdomainOf(domain) &&
            domain.IsSubdomainOf(*home)) {
          assign(sourced, domain);
        }
      }
    }
  }

  // --- Step 4: recover missing data (SOA / apex NS). ---
  for (auto& [origin, zone] : zones) {
    if (zone->Soa() == nullptr) {
      auto status = zone->AddRecord(SynthesizeSoa(origin));
      if (status.ok()) ++result.soa_synthesized;
    }
    // Apex NS should exist via referral reuse; synthesize as last resort.
    if (zone->ApexNs() == nullptr) {
      auto ns_it = domain_ns.find(origin);
      if (ns_it != domain_ns.end() && !ns_it->second.empty()) {
        auto ns_name = dns::Name::Parse(*ns_it->second.begin());
        if (ns_name.ok()) {
          auto add_ok = zone->AddRecord(dns::ResourceRecord{
              origin, dns::RRType::kNS, dns::RRClass::kIN, 86400,
              dns::NsRdata{*ns_name}});
          (void)add_ok;
        }
      }
    }
  }

  // --- Finalize: keep servable zones only. ---
  for (auto& [origin, zone] : zones) {
    if (!zone->Validate().ok()) {
      LDP_DEBUG << "dropping non-servable reconstructed zone "
                << origin.ToString();
      continue;
    }
    auto servers_it = zone_servers.find(origin);
    std::vector<IpAddress> addresses;
    if (servers_it != zone_servers.end()) {
      addresses.assign(servers_it->second.begin(), servers_it->second.end());
      std::sort(addresses.begin(), addresses.end());
    }
    result.zone_nameservers[origin] = std::move(addresses);
    result.zones.push_back(zone);
  }
  if (result.zones.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "reconstruction produced no servable zones");
  }
  return result;
}

}  // namespace ldp::zoneconstruct
