// Zone construction from captured traffic (paper §2.3): replay each unique
// query once through a cold-cache recursive against the (simulated)
// Internet, harvest every authoritative response at the recursive's
// upstream interface, and reverse the responses into reusable zone files:
//
//  1. scan responses for NS records and their host addresses,
//  2. group nameservers serving the same domain and aggregate the response
//     data of each group into an intermediate zone,
//  3. split intermediate data at zone cuts into per-zone files,
//  4. synthesize a fake-but-valid SOA where the traces never showed one,
//  5. resolve conflicting answers by keeping the first (CDN rotation etc.).
#ifndef LDPLAYER_ZONECONSTRUCT_CONSTRUCTOR_H
#define LDPLAYER_ZONECONSTRUCT_CONSTRUCTOR_H

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ip.h"
#include "common/result.h"
#include "dns/message.h"
#include "trace/record.h"
#include "workload/hierarchy.h"
#include "zone/view.h"
#include "zone/zone.h"

namespace ldp::zoneconstruct {

struct ConstructionResult {
  std::vector<zone::ZonePtr> zones;
  // Per-zone public nameserver addresses — these become the match-clients
  // lists of the meta-DNS-server's split-horizon views.
  std::unordered_map<dns::Name, std::vector<IpAddress>> zone_nameservers;
  size_t responses_harvested = 0;
  size_t conflicts_dropped = 0;  // later answers differing from the first
  size_t soa_synthesized = 0;

  // Builds the meta-DNS-server view table: one view per zone, matched by
  // that zone's nameserver addresses (the OQDA after proxy rewriting).
  Result<zone::ViewTable> BuildViews() const;
};

class ZoneConstructor {
 public:
  // Feeds one harvested authoritative response. `server` is the address
  // the response came from (the authoritative server's public address).
  void AddResponse(IpAddress server, const dns::Message& response);

  // Reverses everything fed so far into per-zone data.
  Result<ConstructionResult> Build();

  size_t response_count() const { return response_count_; }

 private:
  struct SourcedRecord {
    dns::ResourceRecord record;
    IpAddress server;
    size_t response_id;
  };

  size_t response_count_ = 0;
  std::vector<SourcedRecord> records_;
};

}  // namespace ldp::zoneconstruct

#endif  // LDPLAYER_ZONECONSTRUCT_CONSTRUCTOR_H
