#include "zoneconstruct/harvest.h"

#include <unordered_set>

#include "resolver/resolver.h"
#include "server/sim_server.h"
#include "sim/network.h"

namespace ldp::zoneconstruct {

Result<HarvestOutcome> HarvestZonesFromTrace(
    const std::vector<trace::QueryRecord>& queries,
    const workload::Hierarchy& internet, const HarvestConfig& config) {
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);

  // --- The simulated Internet: one authoritative node per NS address. ---
  std::vector<std::unique_ptr<server::SimDnsServer>> servers;
  ZoneConstructor constructor;
  for (const auto& [address, origin] : internet.address_to_zone) {
    zone::ZoneSet set;
    zone::ZonePtr zone;
    for (const auto& candidate : internet.AllZones()) {
      if (candidate->origin() == origin) {
        zone = candidate;
        break;
      }
    }
    if (zone == nullptr) continue;
    LDP_RETURN_IF_ERROR(set.AddZone(zone));
    auto node = server::MakeAuthoritativeNode(net, address, std::move(set));
    if (node == nullptr) {
      return Error(ErrorCode::kInternal,
                   "failed to start authoritative node " + address.ToString());
    }
    // Tap at the server's egress = capture at the recursive's upstream
    // interface (every response crosses exactly this point).
    net.SetEgressHook(address, [&constructor, address](
                                   sim::SimPacket& packet) {
      if (packet.kind == sim::SegmentKind::kUdp && packet.src_port == 53) {
        auto message = dns::Message::Decode(packet.payload);
        if (message.ok() && message->qr) {
          constructor.AddResponse(address, *message);
        }
      }
      return false;  // passive tap: the packet still flows normally
    });
    servers.push_back(std::move(node));
  }

  // --- Cold-cache recursive with root hints from the hierarchy. ---
  resolver::ResolverConfig resolver_config;
  resolver_config.address = config.resolver_address;
  auto hints_it = internet.nameservers.find(dns::Name::Root());
  if (hints_it == internet.nameservers.end()) {
    return Error(ErrorCode::kInvalidArgument, "hierarchy has no root servers");
  }
  resolver_config.root_hints = hints_it->second;
  resolver::SimResolver resolver(net, resolver_config);
  LDP_RETURN_IF_ERROR(resolver.Start());

  // --- Replay unique queries, once each (paper: "all unique queries"). ---
  HarvestOutcome outcome;
  std::unordered_set<std::string> seen;
  size_t scheduled = 0;

  // Explicit NS fetch for the root (paper §2.3 "Recover Missing Data"):
  // referral traffic teaches every *child* zone's NS set but never the
  // root's own apex NS, without which the reconstructed hierarchy has no
  // entry point. Scheduled first so first-answer-wins favours it.
  simulator.ScheduleAt(0, [&]() {
    resolver.Resolve(dns::Name::Root(), dns::RRType::kNS,
                     [](const dns::Message&) {});
  });
  for (const auto& record : queries) {
    std::string key = record.qname.CanonicalKey() + "/" +
                      dns::RRTypeToString(record.qtype);
    if (!seen.insert(std::move(key)).second) continue;
    ++outcome.unique_queries;

    NanoTime when = static_cast<NanoTime>(scheduled++) * config.pacing;
    simulator.ScheduleAt(when, [&, qname = record.qname,
                                qtype = record.qtype]() {
      resolver.Resolve(qname, qtype, [&](const dns::Message& response) {
        if (response.rcode == dns::Rcode::kServFail) {
          ++outcome.failed;
        } else {
          ++outcome.resolved;
        }
      });
    });
  }

  simulator.Run();

  LDP_ASSIGN_OR_RETURN(outcome.construction, constructor.Build());
  return outcome;
}

}  // namespace ldp::zoneconstruct
