// The "one-time queries to the Internet" driver (paper §2.3): stands up a
// simulated Internet (one authoritative node per nameserver address of the
// ground-truth hierarchy), replays each unique query from a trace through a
// cold-cache recursive, taps the recursive's upstream interface, and feeds
// every harvested response to the ZoneConstructor.
#ifndef LDPLAYER_ZONECONSTRUCT_HARVEST_H
#define LDPLAYER_ZONECONSTRUCT_HARVEST_H

#include <vector>

#include "trace/record.h"
#include "workload/hierarchy.h"
#include "zoneconstruct/constructor.h"

namespace ldp::zoneconstruct {

struct HarvestConfig {
  IpAddress resolver_address = IpAddress(10, 0, 0, 2);
  // Pacing between unique queries; bounds resolver concurrency.
  NanoDuration pacing = Millis(2);
};

struct HarvestOutcome {
  ConstructionResult construction;
  size_t unique_queries = 0;
  size_t resolved = 0;
  size_t failed = 0;  // SERVFAIL during harvesting (hierarchy gaps)
};

Result<HarvestOutcome> HarvestZonesFromTrace(
    const std::vector<trace::QueryRecord>& queries,
    const workload::Hierarchy& internet, const HarvestConfig& config = {});

}  // namespace ldp::zoneconstruct

#endif  // LDPLAYER_ZONECONSTRUCT_HARVEST_H
