// AXFR zone transfer (RFC 5936) and the resolver's TC→TCP fallback
// (RFC 7766) — the stream-transport features behind "acquire the zone from
// its manager" (§2.3) and correct replay of truncation-prone DNSSEC
// responses.
#include <gtest/gtest.h>

#include "resolver/resolver.h"
#include "server/sim_server.h"
#include "workload/hierarchy.h"
#include "zone/dnssec.h"
#include "zone/masterfile.h"
#include "zoneconstruct/axfr_client.h"

namespace ldp {
namespace {

zone::ZonePtr BigZone(size_t hosts) {
  auto zone = std::make_shared<zone::Zone>(*dns::Name::Parse("big.test"));
  auto add = [&](dns::ResourceRecord record) {
    auto status = zone->AddRecord(record);
    ASSERT_TRUE(status.ok());
  };
  add(dns::ResourceRecord{*dns::Name::Parse("big.test"), dns::RRType::kSOA,
                          dns::RRClass::kIN, 3600,
                          dns::SoaRdata{*dns::Name::Parse("ns1.big.test"),
                                        *dns::Name::Parse("admin.big.test"),
                                        7, 2, 3, 4, 5}});
  add(dns::ResourceRecord{*dns::Name::Parse("big.test"), dns::RRType::kNS,
                          dns::RRClass::kIN, 3600,
                          dns::NsRdata{*dns::Name::Parse("ns1.big.test")}});
  add(dns::ResourceRecord{*dns::Name::Parse("ns1.big.test"), dns::RRType::kA,
                          dns::RRClass::kIN, 3600,
                          dns::ARdata{IpAddress(192, 0, 2, 53)}});
  for (size_t i = 0; i < hosts; ++i) {
    add(dns::ResourceRecord{
        *dns::Name::Parse("host" + std::to_string(i) + ".big.test"),
        dns::RRType::kTXT, dns::RRClass::kIN, 300,
        dns::TxtRdata{{std::string(180, 'x') + std::to_string(i)}}});
  }
  return zone;
}

class AxfrTest : public ::testing::Test {
 protected:
  AxfrTest() : net_(sim_) {
    net_.SetDefaultOneWayDelay(Millis(1));
  }

  void Serve(zone::ZonePtr zone) {
    zone::ZoneSet set;
    ASSERT_TRUE(set.AddZone(std::move(zone)).ok());
    zone::ViewTable views;
    views.SetDefaultView(std::move(set));
    engine_ = std::make_shared<server::AuthServerEngine>(std::move(views));
    server::SimDnsServer::Config config;
    config.address = server_addr_;
    server_ = std::make_unique<server::SimDnsServer>(net_, engine_, config);
    ASSERT_TRUE(server_->Start().ok());
  }

  sim::Simulator sim_;
  sim::SimNetwork net_;
  IpAddress server_addr_{10, 0, 0, 1};
  IpAddress client_addr_{10, 0, 0, 9};
  std::shared_ptr<server::AuthServerEngine> engine_;
  std::unique_ptr<server::SimDnsServer> server_;
};

TEST_F(AxfrTest, TransfersSmallZoneIntact) {
  auto original = BigZone(10);
  Serve(original);
  auto transferred = zoneconstruct::TransferZoneSync(
      net_, client_addr_, Endpoint{server_addr_, 53},
      *dns::Name::Parse("big.test"));
  ASSERT_TRUE(transferred.ok()) << transferred.error().ToString();
  EXPECT_EQ(transferred->record_count(), original->record_count());
  EXPECT_EQ(transferred->node_count(), original->node_count());
  EXPECT_TRUE(transferred->Validate().ok());
}

TEST_F(AxfrTest, LargeZoneSpansMultipleMessages) {
  // ~400 TXT records at ~200 bytes each exceed the 32 KiB per-message
  // budget, forcing a multi-message transfer.
  auto original = BigZone(400);
  Serve(original);
  auto transferred = zoneconstruct::TransferZoneSync(
      net_, client_addr_, Endpoint{server_addr_, 53},
      *dns::Name::Parse("big.test"));
  ASSERT_TRUE(transferred.ok()) << transferred.error().ToString();
  EXPECT_EQ(transferred->record_count(), original->record_count());
  // At least three AXFR response messages were needed.
  EXPECT_GE(engine_->stats().responses, 3u);
}

TEST_F(AxfrTest, SignedZoneTransfersWithDnssecRecords) {
  auto original = BigZone(20);
  ASSERT_TRUE(zone::SignZone(*original, zone::DnssecConfig{}).ok());
  Serve(original);
  auto transferred = zoneconstruct::TransferZoneSync(
      net_, client_addr_, Endpoint{server_addr_, 53},
      *dns::Name::Parse("big.test"));
  ASSERT_TRUE(transferred.ok()) << transferred.error().ToString();
  EXPECT_EQ(transferred->record_count(), original->record_count());
  EXPECT_NE(transferred->FindRRset(*dns::Name::Parse("big.test"),
                                   dns::RRType::kDNSKEY),
            nullptr);
}

TEST_F(AxfrTest, RefusedForUnknownZone) {
  Serve(BigZone(5));
  auto transferred = zoneconstruct::TransferZoneSync(
      net_, client_addr_, Endpoint{server_addr_, 53},
      *dns::Name::Parse("other.test"));
  EXPECT_FALSE(transferred.ok());
}

TEST_F(AxfrTest, AxfrOverUdpRefused) {
  Serve(BigZone(5));
  dns::Message query;
  query.id = 9;
  query.questions.push_back(dns::Question{*dns::Name::Parse("big.test"),
                                          dns::RRType::kAXFR,
                                          dns::RRClass::kIN});
  auto wire = engine_->HandleWire(query.Encode(), client_addr_, 65535);
  ASSERT_TRUE(wire.ok());
  auto decoded = dns::Message::Decode(*wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rcode, dns::Rcode::kRefused);
}

// --- TC bit fallback ---

class TcFallbackTest : public ::testing::Test {
 protected:
  TcFallbackTest() : net_(sim_) {}

  void SetUp() override {
    net_.SetDefaultOneWayDelay(Millis(1));
    // A zone whose answer for fat.test exceeds 512 bytes: non-EDNS UDP
    // queries truncate and must fall back to TCP.
    auto zone = std::make_shared<zone::Zone>(*dns::Name::Parse("fat.test"));
    auto add_record = [&](dns::ResourceRecord record) {
      auto status = zone->AddRecord(record);
      ASSERT_TRUE(status.ok());
    };
    add_record(dns::ResourceRecord{
        *dns::Name::Parse("fat.test"), dns::RRType::kSOA, dns::RRClass::kIN,
        3600,
        dns::SoaRdata{*dns::Name::Parse("ns1.fat.test"),
                      *dns::Name::Parse("admin.fat.test"), 1, 2, 3, 4, 5}});
    add_record(dns::ResourceRecord{*dns::Name::Parse("fat.test"),
                                   dns::RRType::kNS, dns::RRClass::kIN, 3600,
                                   dns::NsRdata{*dns::Name::Parse(
                                       "ns1.fat.test")}});
    add_record(dns::ResourceRecord{*dns::Name::Parse("ns1.fat.test"),
                                   dns::RRType::kA, dns::RRClass::kIN, 3600,
                                   dns::ARdata{IpAddress(10, 0, 0, 1)}});
    for (int i = 0; i < 10; ++i) {
      add_record(dns::ResourceRecord{
          *dns::Name::Parse("big.fat.test"), dns::RRType::kTXT,
          dns::RRClass::kIN, 300,
          dns::TxtRdata{{std::string(100, 'a' + i)}}});
    }

    zone::ZoneSet set;
    ASSERT_TRUE(set.AddZone(std::move(zone)).ok());
    zone::ViewTable views;
    views.SetDefaultView(std::move(set));
    engine_ = std::make_shared<server::AuthServerEngine>(std::move(views));
    server::SimDnsServer::Config config;
    config.address = server_addr_;
    server_ = std::make_unique<server::SimDnsServer>(net_, engine_, config);
    ASSERT_TRUE(server_->Start().ok());

    // The resolver queries this server directly as its "root hint".
    resolver::ResolverConfig rconfig;
    rconfig.address = resolver_addr_;
    rconfig.root_hints = {server_addr_};
    resolver_ = std::make_unique<resolver::SimResolver>(net_, rconfig);
    ASSERT_TRUE(resolver_->Start().ok());
  }


  sim::Simulator sim_;
  sim::SimNetwork net_;
  IpAddress server_addr_{10, 0, 0, 1};
  IpAddress resolver_addr_{10, 0, 0, 2};
  std::shared_ptr<server::AuthServerEngine> engine_;
  std::unique_ptr<server::SimDnsServer> server_;
  std::unique_ptr<resolver::SimResolver> resolver_;
};

TEST_F(TcFallbackTest, NoFallbackWhenAnswerFitsEdns) {
  // ~1 KB of TXT fits the resolver's EDNS 4096 advertisement: answered
  // over UDP, no TCP retry.
  std::optional<dns::Message> small;
  resolver_->Resolve(*dns::Name::Parse("big.fat.test"), dns::RRType::kTXT,
                     [&](const dns::Message& m) { small = m; });
  sim_.Run();
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->answers.size(), 10u);
  EXPECT_EQ(resolver_->stats().tcp_fallbacks, 0u);
}

TEST_F(TcFallbackTest, OversizeAnswerFallsBackAndCompletes) {
  // Rebuild with a >4096-byte RRset so even EDNS 4096 truncates.
  auto zone = std::make_shared<zone::Zone>(*dns::Name::Parse("huge.test"));
  auto add_record = [&](dns::ResourceRecord record) {
    ASSERT_TRUE(zone->AddRecord(record).ok());
  };
  add_record(dns::ResourceRecord{
      *dns::Name::Parse("huge.test"), dns::RRType::kSOA, dns::RRClass::kIN,
      3600,
      dns::SoaRdata{*dns::Name::Parse("ns1.huge.test"),
                    *dns::Name::Parse("admin.huge.test"), 1, 2, 3, 4, 5}});
  add_record(dns::ResourceRecord{
      *dns::Name::Parse("huge.test"), dns::RRType::kNS, dns::RRClass::kIN,
      3600, dns::NsRdata{*dns::Name::Parse("ns1.huge.test")}});
  add_record(dns::ResourceRecord{*dns::Name::Parse("ns1.huge.test"),
                                 dns::RRType::kA, dns::RRClass::kIN, 3600,
                                 dns::ARdata{IpAddress(10, 0, 0, 1)}});
  for (int i = 0; i < 30; ++i) {
    add_record(dns::ResourceRecord{
        *dns::Name::Parse("massive.huge.test"), dns::RRType::kTXT,
        dns::RRClass::kIN, 300,
        dns::TxtRdata{{std::string(200, 'a') + std::to_string(i)}}});
  }
  zone::ZoneSet set;
  ASSERT_TRUE(set.AddZone(std::move(zone)).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));
  server::SimDnsServer::Config config;
  config.address = IpAddress(10, 0, 0, 11);
  server::SimDnsServer huge_server(net_, engine, config);
  ASSERT_TRUE(huge_server.Start().ok());

  resolver::ResolverConfig rconfig;
  rconfig.address = IpAddress(10, 0, 0, 12);
  rconfig.root_hints = {config.address};
  resolver::SimResolver resolver(net_, rconfig);
  ASSERT_TRUE(resolver.Start().ok());

  std::optional<dns::Message> result;
  resolver.Resolve(*dns::Name::Parse("massive.huge.test"), dns::RRType::kTXT,
                   [&](const dns::Message& m) { result = m; });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->rcode, dns::Rcode::kNoError);
  EXPECT_EQ(result->answers.size(), 30u);      // the full >6 KB RRset
  EXPECT_EQ(resolver.stats().tcp_fallbacks, 1u);
}

}  // namespace
}  // namespace ldp
