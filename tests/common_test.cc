#include <gtest/gtest.h>

#include "common/base64.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/strings.h"

namespace ldp {
namespace {

TEST(Result, OkAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = Error(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(err.error().ToString(), "NOT_FOUND: nope");
}

TEST(Result, WithContext) {
  Error e(ErrorCode::kParseError, "bad label");
  Error wrapped = e.WithContext("zone example.com");
  EXPECT_EQ(wrapped.message(), "zone example.com: bad label");
  EXPECT_EQ(wrapped.code(), ErrorCode::kParseError);
}

TEST(Result, ValueOr) {
  Result<int> err = Error(ErrorCode::kNotFound, "x");
  EXPECT_EQ(err.value_or(7), 7);
  Result<int> ok = 3;
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(Bytes, RoundTripIntegers) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);

  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU16().value(), 0x1234);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Bytes, TruncationDetected) {
  Bytes data{0x01};
  ByteReader r(data);
  EXPECT_FALSE(r.ReadU16().ok());
  EXPECT_EQ(r.ReadU8().value(), 0x01);
  EXPECT_FALSE(r.ReadU8().ok());
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.WriteU16(0);
  w.WriteU32(7);
  w.PatchU16(0, 0xbeef);
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU16().value(), 0xbeef);
}

TEST(Bytes, SeekAndSkip) {
  Bytes data{1, 2, 3, 4};
  ByteReader r(data);
  EXPECT_TRUE(r.Skip(2).ok());
  EXPECT_EQ(r.ReadU8().value(), 3);
  EXPECT_TRUE(r.Seek(0).ok());
  EXPECT_EQ(r.ReadU8().value(), 1);
  EXPECT_FALSE(r.Seek(5).ok());
  EXPECT_FALSE(r.Skip(9).ok());
}

TEST(Ip, ParseAndFormat) {
  auto addr = IpAddress::Parse("192.0.2.1");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->ToString(), "192.0.2.1");
  EXPECT_EQ(addr->value(), 0xc0000201u);

  EXPECT_FALSE(IpAddress::Parse("256.0.0.1").ok());
  EXPECT_FALSE(IpAddress::Parse("1.2.3").ok());
  EXPECT_FALSE(IpAddress::Parse("1.2.3.4.5").ok());
  EXPECT_FALSE(IpAddress::Parse("a.b.c.d").ok());
  EXPECT_FALSE(IpAddress::Parse("1.2.3.4 ").ok());
}

TEST(Ip, Ordering) {
  EXPECT_LT(IpAddress(10, 0, 0, 1), IpAddress(10, 0, 0, 2));
  EXPECT_EQ(IpAddress(127, 0, 0, 1), IpAddress::Loopback());
}

TEST(Ip, EndpointParse) {
  auto ep = Endpoint::Parse("10.1.2.3:53");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep->addr, IpAddress(10, 1, 2, 3));
  EXPECT_EQ(ep->port, 53);
  EXPECT_EQ(ep->ToString(), "10.1.2.3:53");
  EXPECT_FALSE(Endpoint::Parse("10.1.2.3").ok());
  EXPECT_FALSE(Endpoint::Parse("10.1.2.3:99999").ok());
}

TEST(Ipv6, ParseFull) {
  auto a = Ipv6Address::Parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "2001:db8::1");
}

TEST(Ipv6, ParseCompressed) {
  auto a = Ipv6Address::Parse("2001:db8::1");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->octets()[0], 0x20);
  EXPECT_EQ(a->octets()[1], 0x01);
  EXPECT_EQ(a->octets()[15], 0x01);
  EXPECT_EQ(a->ToString(), "2001:db8::1");
}

TEST(Ipv6, RoundTripEdgeCases) {
  for (const char* text :
       {"::", "::1", "1::", "2001:db8::", "::ffff:1:2", "1:2:3:4:5:6:7:8",
        "a:0:0:b::c"}) {
    auto a = Ipv6Address::Parse(text);
    ASSERT_TRUE(a.ok()) << text;
    auto b = Ipv6Address::Parse(a->ToString());
    ASSERT_TRUE(b.ok()) << a->ToString();
    EXPECT_EQ(a->octets(), b->octets()) << text << " -> " << a->ToString();
  }
}

TEST(Ipv6, Invalid) {
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3").ok());
  EXPECT_FALSE(Ipv6Address::Parse("1:2:3:4:5:6:7:8:9").ok());
  EXPECT_FALSE(Ipv6Address::Parse("12345::").ok());
  EXPECT_FALSE(Ipv6Address::Parse("g::1").ok());
}

TEST(Strings, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWhitespace) {
  auto parts = SplitWhitespace("  foo\tbar  baz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t\n"), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("Example.COM", "example.com"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_TRUE(StartsWith("example.com", "exam"));
  EXPECT_TRUE(EndsWith("example.com", ".com"));
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(ParseInt64("-42").value(), -42);
  EXPECT_EQ(ParseUint64("42").value(), 42u);
  EXPECT_FALSE(ParseUint64("4x").ok());
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_FALSE(ParseDouble("3.5x").ok());
}

TEST(Base64, KnownVectors) {
  // RFC 4648 test vectors.
  auto enc = [](std::string_view s) {
    return Base64Encode(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foob"), "Zm9vYg==");
  EXPECT_EQ(enc("fooba"), "Zm9vYmE=");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeRejectsBadInput) {
  EXPECT_FALSE(Base64Decode("abc").ok());     // not multiple of 4
  EXPECT_FALSE(Base64Decode("a=bc").ok());    // misplaced padding
  EXPECT_FALSE(Base64Decode("ab!c").ok());    // bad char
  EXPECT_TRUE(Base64Decode("").ok());
}

TEST(Base64, RoundTripRandom) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(rng.NextBelow(100));
    for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
    auto decoded = Base64Decode(Base64Encode(data));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_GT(rng.NextExponential(10.0), 0.0);
    EXPECT_GE(rng.NextPareto(1.0, 1.5), 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Clock, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(Seconds(3)), "3.000000000");
  EXPECT_EQ(FormatSeconds(Seconds(1) + 5), "1.000000005");
  EXPECT_EQ(FormatSeconds(-Millis(1500)), "-1.500000000");
}

TEST(Clock, MonotonicAdvances) {
  NanoTime a = MonotonicNow();
  NanoTime b = MonotonicNow();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace ldp
