// Integration tests for the DatagramPath transport seam (net/datapath.h):
// epoll round-trip semantics, the full serve→replay chain through the
// interface with exact terminal accounting, and — when the host allows
// AF_PACKET rings — the same through the afpacket backend, including the
// wildcard-ring OQDA delivery and source-spoofed replies the hierarchy
// proxy depends on. Afpacket cases skip with the probe's reason on hosts
// without CAP_NET_RAW or ring support.
#include "net/datapath.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "net/event_loop.h"
#include "replay/realtime.h"
#include "server/socket_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"

namespace ldp::net {
namespace {

TEST(DatapathKindTest, ParseAndName) {
  auto epoll = ParseDatapathKind("epoll");
  ASSERT_TRUE(epoll.ok());
  EXPECT_EQ(*epoll, DatapathKind::kEpoll);
  auto afpacket = ParseDatapathKind("afpacket");
  ASSERT_TRUE(afpacket.ok());
  EXPECT_EQ(*afpacket, DatapathKind::kAfPacket);
  EXPECT_FALSE(ParseDatapathKind("dpdk").ok());
  EXPECT_FALSE(ParseDatapathKind("").ok());
  EXPECT_EQ(DatapathKindName(DatapathKind::kEpoll), "epoll");
  EXPECT_EQ(DatapathKindName(DatapathKind::kAfPacket), "afpacket");
}

// One datagram each way through a backend; asserts the RecvItem address
// semantics: `from` is the sender, `to` is the address the datagram
// targeted (== local() for concretely-bound paths).
void RoundTrip(DatapathKind kind) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  DatapathOptions options;
  options.kind = kind;

  const Bytes query = {'q', 'u', 'e', 'r', 'y'};
  const Bytes reply = {'r', 'e', 'p', 'l', 'y', '!'};

  std::unique_ptr<DatagramPath> server;
  size_t server_got = 0;
  Endpoint server_saw_from, server_saw_to;
  auto server_result = DatagramPath::Open(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const DatagramPath::RecvItem> batch) {
        for (const auto& item : batch) {
          ++server_got;
          server_saw_from = item.from;
          server_saw_to = item.to;
          EXPECT_EQ(item.payload.size(), query.size());
          DatagramPath::SendItem out{reply, item.from, {}};
          EXPECT_EQ(server->SendBatch({&out, 1}), 1u);
        }
      },
      options);
  ASSERT_TRUE(server_result.ok()) << server_result.error().ToString();
  server = std::move(*server_result);
  ASSERT_NE(server->local().port, 0) << "ephemeral bind must resolve";
  EXPECT_EQ(server->kind(), kind);

  size_t client_got = 0;
  Endpoint client_saw_from;
  Bytes client_payload;
  auto client_result = DatagramPath::Open(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const DatagramPath::RecvItem> batch) {
        for (const auto& item : batch) {
          ++client_got;
          client_saw_from = item.from;
          client_payload.assign(item.payload.begin(), item.payload.end());
        }
        (*loop)->Stop();
      },
      options);
  ASSERT_TRUE(client_result.ok()) << client_result.error().ToString();
  auto client = std::move(*client_result);

  ASSERT_TRUE(client->SendTo(query, server->local()).ok());
  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });  // safety
  (*loop)->Run();

  ASSERT_EQ(server_got, 1u);
  EXPECT_EQ(server_saw_from, client->local());
  EXPECT_EQ(server_saw_to, server->local());
  ASSERT_EQ(client_got, 1u);
  EXPECT_EQ(client_saw_from, server->local());
  EXPECT_EQ(client_payload, reply);
}

TEST(DatapathTest, EpollRoundTrip) { RoundTrip(DatapathKind::kEpoll); }

TEST(DatapathTest, AfPacketRoundTrip) {
  if (auto probe = ProbeAfPacket({}); !probe.ok()) {
    GTEST_SKIP() << "afpacket unavailable: " << probe.error().ToString();
  }
  RoundTrip(DatapathKind::kAfPacket);
}

// The hierarchy-proxy contract: one wildcard ring hears every address on
// its port, reports the queried address in RecvItem::to, and replies can
// spoof that address back via SendItem::from.
TEST(DatapathTest, AfPacketWildcardRingDeliversOqdaAndSpoofsSource) {
  if (auto probe = ProbeAfPacket({}); !probe.ok()) {
    GTEST_SKIP() << "afpacket unavailable: " << probe.error().ToString();
  }
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  DatapathOptions options;
  options.kind = DatapathKind::kAfPacket;

  const IpAddress alias = *IpAddress::Parse("127.6.5.4");
  const Bytes query = {'o', 'q', 'd', 'a'};
  const Bytes reply = {'o', 'k'};

  // Wildcard ring: unspecified address, ephemeral port (the shadow socket
  // resolves it); matches on port alone.
  std::unique_ptr<DatagramPath> ring;
  Endpoint ring_saw_to;
  auto ring_result = DatagramPath::Open(
      **loop, Endpoint{IpAddress(), 0},
      [&](std::span<const DatagramPath::RecvItem> batch) {
        for (const auto& item : batch) {
          ring_saw_to = item.to;
          // Answer from the address the client actually queried.
          DatagramPath::SendItem out{reply, item.from, item.to};
          EXPECT_EQ(ring->SendBatch({&out, 1}), 1u);
        }
      },
      options);
  ASSERT_TRUE(ring_result.ok()) << ring_result.error().ToString();
  ring = std::move(*ring_result);
  const uint16_t port = ring->local().port;
  ASSERT_NE(port, 0);

  Endpoint client_saw_from;
  size_t client_got = 0;
  auto client_result = DatagramPath::Open(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const DatagramPath::RecvItem> batch) {
        for (const auto& item : batch) {
          ++client_got;
          client_saw_from = item.from;
        }
        (*loop)->Stop();
      },
      options);
  ASSERT_TRUE(client_result.ok()) << client_result.error().ToString();
  auto client = std::move(*client_result);

  // Query an address nothing is bound to; only the wildcard ring hears it.
  ASSERT_TRUE(client->SendTo(query, Endpoint{alias, port}).ok());
  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });  // safety
  (*loop)->Run();

  EXPECT_EQ(ring_saw_to, (Endpoint{alias, port}));
  ASSERT_EQ(client_got, 1u);
  EXPECT_EQ(client_saw_from, (Endpoint{alias, port}))
      << "reply must carry the spoofed source";
}

// --- Full serve→replay chain through the DatagramPath seam ---

std::shared_ptr<server::AuthServerEngine> MakeEngine() {
  auto zone = zone::ParseMasterFile(
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.53\n"
      "* IN A 192.0.2.200\n",
      zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<server::AuthServerEngine>(std::move(views));
}

// Boots a SocketDnsServer on `kind`, replays `n` queries through a
// querier on the same kind, and checks the terminal-accounting invariant:
// every send ends answered, timed out, or failed — nothing vanishes.
void ServeReplayChain(DatapathKind kind, size_t n) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  server::SocketDnsServer::Config config;
  config.listen = Endpoint{IpAddress::Loopback(), 0};
  config.serve_tcp = false;
  config.datapath.kind = kind;
  auto server = server::SocketDnsServer::Start(**loop, MakeEngine(), config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();
  std::thread server_thread([&]() { (*loop)->Run(); });

  workload::FixedIntervalConfig trace_config;
  trace_config.interarrival = Millis(1);
  trace_config.duration = Millis(static_cast<int64_t>(n));
  trace_config.n_clients = 10;
  auto records = workload::MakeFixedIntervalTrace(trace_config);
  for (auto& r : records) {
    r.dst = (*server)->endpoint().addr;
    r.dst_port = (*server)->endpoint().port;
  }

  replay::RealtimeConfig replay_config;
  replay_config.server = (*server)->endpoint();
  replay_config.fast_mode = true;
  replay_config.query_timeout = Seconds(2);
  replay_config.datapath = kind;
  auto report = replay::RunRealtimeReplay(records, replay_config);
  (*loop)->RequestStop();
  server_thread.join();

  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, records.size());
  // The satellite invariant: counters tie out exactly.
  EXPECT_EQ(report->queries_sent,
            report->answered + report->timed_out + report->send_failed);
  EXPECT_EQ(report->replies, report->answered);
  // Loopback against a live server: effectively lossless.
  EXPECT_GE(report->answered, records.size() - 2);
}

TEST(DatapathTest, EpollServeReplayChainAccountsForEveryQuery) {
  ServeReplayChain(DatapathKind::kEpoll, 200);
}

TEST(DatapathTest, AfPacketServeReplayChainAccountsForEveryQuery) {
  if (auto probe = ProbeAfPacket({}); !probe.ok()) {
    GTEST_SKIP() << "afpacket unavailable: " << probe.error().ToString();
  }
  ServeReplayChain(DatapathKind::kAfPacket, 200);
}

}  // namespace
}  // namespace ldp::net
