// Distributed replay: wire-protocol codecs, frame reassembly under
// adversarial and fragmented input, credit-based backpressure, controller
// ↔ agent loopback end-to-end, and mid-run agent death.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <thread>

#include "distrib/agent.h"
#include "distrib/controller.h"
#include "distrib/protocol.h"
#include "net/event_loop.h"
#include "server/socket_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"

namespace ldp::distrib {
namespace {

// --- codec tests ---

std::vector<trace::QueryRecord> SampleRecords(size_t n) {
  workload::FixedIntervalConfig config;
  config.interarrival = Millis(2);
  config.duration = Millis(2) * static_cast<int64_t>(n);
  config.n_clients = 7;
  return workload::MakeFixedIntervalTrace(config);
}

// Feeds `wire` to an assembler in pieces of `step` bytes and returns the
// completed frames.
std::vector<Frame> Reassemble(const Bytes& wire, size_t step) {
  FrameAssembler assembler;
  std::vector<Frame> frames;
  for (size_t i = 0; i < wire.size(); i += step) {
    size_t len = std::min(step, wire.size() - i);
    EXPECT_TRUE(
        assembler.Feed(std::span(wire.data() + i, len)).ok());
    while (auto frame = assembler.Next()) frames.push_back(std::move(*frame));
  }
  return frames;
}

TEST(ProtocolTest, HelloRoundTripsThroughFragmentedStream) {
  HelloFrame hello;
  hello.agent_id = 3;
  hello.credit_window = 5;
  hello.stats_interval = Millis(250);
  hello.server = Endpoint{IpAddress(192, 0, 2, 1), 5353};
  hello.follow_trace_dst = true;
  hello.dst_port_override = 9953;
  hello.loopback_alias_dst = true;
  hello.fast_mode = true;
  hello.batch_udp = false;
  hello.n_distributors = 4;
  hello.queriers_per_distributor = 2;
  hello.lookahead = Millis(123);
  hello.drain_grace = Millis(77);
  hello.seed = 0xfeedbeefcafe;
  hello.query_timeout = Seconds(3);
  hello.max_retransmits = 2;
  hello.tcp_idle_timeout = Seconds(9);
  hello.tcp_max_reconnects = 7;
  hello.datapath = net::DatapathKind::kAfPacket;
  hello.afpacket_interface = "veth0";
  hello.afpacket_peer_mac = "aa:bb:cc:dd:ee:ff";
  hello.tls_port = 8853;

  Bytes wire = EncodeHello(hello);
  // Byte-at-a-time reassembly must produce the identical frame.
  auto frames = Reassemble(wire, 1);
  ASSERT_EQ(frames.size(), 1u);
  auto decoded = DecodeHello(frames[0]);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded->agent_id, hello.agent_id);
  EXPECT_EQ(decoded->credit_window, hello.credit_window);
  EXPECT_EQ(decoded->stats_interval, hello.stats_interval);
  EXPECT_EQ(decoded->server.addr.value(), hello.server.addr.value());
  EXPECT_EQ(decoded->server.port, hello.server.port);
  EXPECT_EQ(decoded->follow_trace_dst, hello.follow_trace_dst);
  EXPECT_EQ(decoded->dst_port_override, hello.dst_port_override);
  EXPECT_EQ(decoded->loopback_alias_dst, hello.loopback_alias_dst);
  EXPECT_EQ(decoded->fast_mode, hello.fast_mode);
  EXPECT_EQ(decoded->batch_udp, hello.batch_udp);
  EXPECT_EQ(decoded->n_distributors, hello.n_distributors);
  EXPECT_EQ(decoded->queriers_per_distributor,
            hello.queriers_per_distributor);
  EXPECT_EQ(decoded->lookahead, hello.lookahead);
  EXPECT_EQ(decoded->drain_grace, hello.drain_grace);
  EXPECT_EQ(decoded->seed, hello.seed);
  EXPECT_EQ(decoded->query_timeout, hello.query_timeout);
  EXPECT_EQ(decoded->max_retransmits, hello.max_retransmits);
  EXPECT_EQ(decoded->tcp_idle_timeout, hello.tcp_idle_timeout);
  EXPECT_EQ(decoded->tcp_max_reconnects, hello.tcp_max_reconnects);
  EXPECT_EQ(decoded->datapath, hello.datapath);
  EXPECT_EQ(decoded->afpacket_interface, hello.afpacket_interface);
  EXPECT_EQ(decoded->afpacket_peer_mac, hello.afpacket_peer_mac);
  EXPECT_EQ(decoded->tls_port, hello.tls_port);

  // And the RealtimeConfig round trip preserves the replay parameters.
  replay::RealtimeConfig config = decoded->ToRealtimeConfig();
  HelloFrame again = HelloFrame::FromConfig(config);
  EXPECT_EQ(again.seed, hello.seed);
  EXPECT_EQ(again.lookahead, hello.lookahead);
  EXPECT_EQ(again.fast_mode, hello.fast_mode);
  EXPECT_EQ(again.n_distributors, hello.n_distributors);
  EXPECT_EQ(again.datapath, hello.datapath);
  EXPECT_EQ(again.afpacket_interface, hello.afpacket_interface);
  EXPECT_EQ(again.afpacket_peer_mac, hello.afpacket_peer_mac);
  EXPECT_EQ(again.tls_port, hello.tls_port);
}

TEST(ProtocolTest, HelloFromOlderPeerDecodesWithTailDefaults) {
  // A v1 controller sends a HELLO that ends at tcp_max_reconnects: no
  // datapath/TLS tail. The decode must still succeed, with the documented
  // defaults standing in for the missing fields.
  HelloFrame hello;
  hello.agent_id = 12;
  hello.datapath = net::DatapathKind::kAfPacket;  // must NOT survive
  hello.afpacket_interface = "veth9";
  hello.tls_port = 1234;
  Bytes wire = EncodeHello(hello);
  auto frames = Reassemble(wire, 1);
  ASSERT_EQ(frames.size(), 1u);

  // Strip the tail (u8 datapath | name interface | name mac | u16 port)
  // and stamp the version a v1 sender would have written.
  size_t tail = 1 + (2 + hello.afpacket_interface.size()) +
                (2 + hello.afpacket_peer_mac.size()) + 2;
  Frame v1 = frames[0];
  ASSERT_GT(v1.body.size(), tail);
  v1.body.resize(v1.body.size() - tail);
  v1.body[4] = 0;  // version u16 sits after the u32 magic
  v1.body[5] = 1;
  auto decoded = DecodeHello(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded->agent_id, 12);
  EXPECT_EQ(decoded->datapath, net::DatapathKind::kEpoll);
  EXPECT_EQ(decoded->afpacket_interface, "lo");
  EXPECT_EQ(decoded->afpacket_peer_mac, "");
  EXPECT_EQ(decoded->tls_port, 0);

  // A version beyond ours is still rejected outright.
  Frame future = frames[0];
  future.body[5] = static_cast<uint8_t>(kVersion + 1);
  EXPECT_FALSE(DecodeHello(future).ok());
}

TEST(ProtocolTest, ChunkRoundTripPreservesRecords) {
  ChunkFrame chunk;
  chunk.seq = 42;
  chunk.records = SampleRecords(25);
  Bytes wire = EncodeChunk(chunk);
  auto frames = Reassemble(wire, 3);
  ASSERT_EQ(frames.size(), 1u);
  auto decoded = DecodeChunk(frames[0]);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_EQ(decoded->seq, 42u);
  ASSERT_EQ(decoded->records.size(), chunk.records.size());
  for (size_t i = 0; i < chunk.records.size(); ++i) {
    EXPECT_EQ(decoded->records[i], chunk.records[i]) << "record " << i;
  }
}

TEST(ProtocolTest, ManyFramesInOneBuffer) {
  Bytes wire;
  auto append = [&wire](Bytes frame) {
    wire.insert(wire.end(), frame.begin(), frame.end());
  };
  append(EncodeHelloAck(HelloAckFrame{.version = kVersion, .agent_id = 9}));
  append(EncodeClockPong(ClockPongFrame{.t1 = 111, .t2 = 222}));
  append(EncodeChunkAck(ChunkAckFrame{.seq = 7}));
  append(EncodeBye());
  auto frames = Reassemble(wire, wire.size());
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, FrameType::kHelloAck);
  EXPECT_EQ(frames[1].type, FrameType::kClockPong);
  EXPECT_EQ(frames[2].type, FrameType::kChunkAck);
  EXPECT_EQ(frames[3].type, FrameType::kBye);
  auto pong = DecodeClockPong(frames[1]);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->t1, 111);
  EXPECT_EQ(pong->t2, 222);
}

TEST(ProtocolTest, SnapshotRoundTripsExactly) {
  stats::MetricsRegistry registry;
  auto* sent = registry.AddCounter("replay.sent");
  auto* inflight = registry.AddGauge("replay.inflight");
  auto* latency = registry.AddHistogram("replay.latency_ns");
  sent->Add(12345);
  inflight->Set(-3);
  for (uint64_t v : {100u, 200u, 1u << 20, 5u}) latency->Record(v);

  stats::MetricsSnapshot snapshot = registry.Snapshot();
  snapshot.taken_at = 987654321;
  ByteWriter writer;
  EncodeSnapshot(snapshot, writer);
  Bytes wire = std::move(writer).Take();
  ByteReader reader(wire);
  auto decoded = DecodeSnapshot(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(decoded->taken_at, snapshot.taken_at);
  ASSERT_EQ(decoded->counters.size(), snapshot.counters.size());
  EXPECT_EQ(decoded->CounterValue("replay.sent"), 12345u);
  ASSERT_EQ(decoded->gauges.size(), 1u);
  EXPECT_EQ(decoded->gauges[0].second, -3);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  const auto& h = decoded->histograms[0].second;
  const auto& original = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, original.count);
  EXPECT_EQ(h.sum, original.sum);
  EXPECT_EQ(h.max, original.max);
  EXPECT_EQ(h.buckets, original.buckets);
}

TEST(ProtocolTest, RejectsOversizeAndEmptyFrameLengths) {
  // Length over kMaxFramePayload poisons the stream.
  ByteWriter writer;
  writer.WriteU32(kMaxFramePayload + 1);
  writer.WriteU8(static_cast<uint8_t>(FrameType::kChunk));
  FrameAssembler assembler;
  Bytes wire = std::move(writer).Take();
  EXPECT_FALSE(assembler.Feed(wire).ok());

  // Zero-length payload (no type byte) is equally invalid.
  ByteWriter zero;
  zero.WriteU32(0);
  FrameAssembler assembler2;
  Bytes wire2 = std::move(zero).Take();
  EXPECT_FALSE(assembler2.Feed(wire2).ok());
}

TEST(ProtocolTest, RejectsMalformedBodies) {
  // Wrong magic.
  HelloFrame hello;
  Bytes wire = EncodeHello(hello);
  auto frames = Reassemble(wire, wire.size());
  ASSERT_EQ(frames.size(), 1u);
  Frame bad_magic = frames[0];
  bad_magic.body[0] ^= 0xff;
  EXPECT_FALSE(DecodeHello(bad_magic).ok());

  // Truncated body.
  Frame truncated = frames[0];
  truncated.body.resize(truncated.body.size() / 2);
  EXPECT_FALSE(DecodeHello(truncated).ok());

  // Trailing garbage.
  Frame trailing = frames[0];
  trailing.body.push_back(0xab);
  EXPECT_FALSE(DecodeHello(trailing).ok());

  // Type confusion: a HELLO frame is not a CHUNK.
  EXPECT_FALSE(DecodeChunk(frames[0]).ok());

  // Absurd record count in a CHUNK.
  ByteWriter body;
  body.WriteU32(0);                     // seq
  body.WriteU32(kMaxChunkRecords + 1);  // claimed records
  Frame chunk{FrameType::kChunk, std::move(body).Take()};
  auto decoded = DecodeChunk(chunk);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kParseError);
}

TEST(ProtocolTest, AgentReportAccumulatesAndReconciles) {
  AgentReport a;
  a.sent = 10;
  a.answered = 8;
  a.timed_out = 1;
  a.send_failed = 1;
  a.first_send = 500;
  a.last_send = 900;
  a.wall_duration = Seconds(2);
  EXPECT_TRUE(a.OutcomesReconcile());

  AgentReport b;
  b.sent = 5;
  b.answered = 5;
  b.first_send = 100;
  b.last_send = 700;
  b.wall_duration = Seconds(3);
  AgentReport merged;
  merged.Accumulate(a);
  merged.Accumulate(b);
  EXPECT_EQ(merged.sent, 15u);
  EXPECT_EQ(merged.answered, 13u);
  EXPECT_TRUE(merged.OutcomesReconcile());
  EXPECT_EQ(merged.first_send, 100);   // union of send windows
  EXPECT_EQ(merged.last_send, 900);
  EXPECT_EQ(merged.wall_duration, Seconds(3));

  merged.sent += 1;  // break the invariant
  EXPECT_FALSE(merged.OutcomesReconcile());
}

// --- scripted agent: backpressure and failure injection ---

// A minimal blocking-socket agent speaking just enough protocol to probe
// the controller: handshakes, then runs `script` over the connected fd.
class ScriptedAgent {
 public:
  ScriptedAgent() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_GE(fd_, 0);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    endpoint_ = Endpoint{IpAddress::Loopback(), ntohs(addr.sin_port)};
  }
  ~ScriptedAgent() {
    Join();
    if (fd_ >= 0) ::close(fd_);
  }

  Endpoint endpoint() const { return endpoint_; }

  // The session helper handed to the script.
  struct Session {
    int fd = -1;
    FrameAssembler assembler;

    // Blocks for the next frame; empty optional on EOF/error.
    std::optional<Frame> Read() {
      for (;;) {
        if (auto frame = assembler.Next()) return frame;
        uint8_t buffer[4096];
        ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) return std::nullopt;
        if (!assembler.Feed(std::span(buffer, static_cast<size_t>(n))).ok()) {
          return std::nullopt;
        }
      }
    }
    // Non-blocking-ish read: returns the next frame if one arrives within
    // `timeout_ms`, nullopt if the stream stays quiet (or a frame is still
    // partial — callers only probe with this, they don't rely on it).
    std::optional<Frame> TryRead(int timeout_ms) {
      if (auto frame = assembler.Next()) return frame;
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) return std::nullopt;
      uint8_t buffer[4096];
      ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) return std::nullopt;
      if (!assembler.Feed(std::span(buffer, static_cast<size_t>(n))).ok()) {
        return std::nullopt;
      }
      return assembler.Next();
    }
    void Write(const Bytes& frame) {
      size_t off = 0;
      while (off < frame.size()) {
        ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) return;
        off += static_cast<size_t>(n);
      }
    }
    // HELLO → HELLO_ACK, CLOCK_PINGs → zero-offset PONGs, until START.
    bool Handshake() {
      for (;;) {
        auto frame = Read();
        if (!frame) return false;
        if (frame->type == FrameType::kHello) {
          auto hello = DecodeHello(*frame);
          if (!hello.ok()) return false;
          Write(EncodeHelloAck(
              HelloAckFrame{.version = kVersion, .agent_id = hello->agent_id}));
        } else if (frame->type == FrameType::kClockPing) {
          auto ping = DecodeClockPing(*frame);
          if (!ping.ok()) return false;
          Write(EncodeClockPong(ClockPongFrame{.t1 = ping->t1,
                                               .t2 = ping->t1}));
        } else if (frame->type == FrameType::kStart) {
          return true;
        } else {
          return false;
        }
      }
    }
  };

  void Run(std::function<void(Session&)> script) {
    thread_ = std::thread([this, script = std::move(script)] {
      Session session;
      session.fd = ::accept(fd_, nullptr, nullptr);
      if (session.fd < 0) return;
      script(session);
      ::close(session.fd);
    });
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  int fd_ = -1;
  Endpoint endpoint_;
  std::thread thread_;
};

TEST(ControllerTest, CreditWindowStallsChunksNotMemory) {
  ScriptedAgent agent;
  constexpr uint32_t kWindow = 2;
  constexpr uint32_t kChunk = 16;
  const auto records = SampleRecords(160);  // 10 chunks

  std::atomic<uint64_t> records_seen{0};
  agent.Run([&](ScriptedAgent::Session& session) {
    ASSERT_TRUE(session.Handshake());
    std::vector<uint32_t> held;  // received but deliberately un-acked
    uint64_t seen = 0;
    bool done = false;
    bool probed = false;
    while (!done) {
      while (held.size() < kWindow && !done) {
        auto frame = session.Read();
        ASSERT_TRUE(frame.has_value());
        if (frame->type == FrameType::kChunk) {
          auto chunk = DecodeChunk(*frame);
          ASSERT_TRUE(chunk.ok());
          seen += chunk->records.size();
          held.push_back(chunk->seq);
        } else if (frame->type == FrameType::kInputDone) {
          done = true;
        } else {
          FAIL() << "unexpected frame type "
                 << static_cast<int>(frame->type);
        }
      }
      // First time the window fills (8 chunks still to come), the stream
      // must go quiet: a controller that overran its credit would deliver
      // another CHUNK here.
      if (!probed && !done && held.size() == kWindow) {
        probed = true;
        auto extra = session.TryRead(250);
        if (extra.has_value()) {
          EXPECT_NE(extra->type, FrameType::kChunk)
              << "controller overran the credit window";
        }
      }
      // Ack the oldest held chunk, releasing exactly one credit.
      if (!held.empty()) {
        session.Write(EncodeChunkAck(ChunkAckFrame{.seq = held.front()}));
        held.erase(held.begin());
      }
    }
    for (uint32_t seq : held) {
      session.Write(EncodeChunkAck(ChunkAckFrame{.seq = seq}));
    }
    records_seen.store(seen);
    // Minimal coherent report: everything "sent and answered".
    ReportFrame report;
    report.report.sent = seen;
    report.report.answered = seen;
    session.Write(EncodeReport(report));
    // Wait for BYE.
    while (auto frame = session.Read()) {
      if (frame->type == FrameType::kBye) break;
    }
  });

  ControllerOptions options;
  options.agents = {agent.endpoint()};
  options.chunk_records = kChunk;
  options.credit_window = kWindow;
  options.config.fast_mode = true;
  auto report = RunDistributedReplay(records, options);
  agent.Join();
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_FALSE(report->failed) << report->error;
  EXPECT_EQ(records_seen.load(), records.size());
  EXPECT_TRUE(report->ReconcileDiffs().empty());
}

TEST(ControllerTest, MidRunDisconnectIsTerminalWithPartialStats) {
  ScriptedAgent agent;
  const auto records = SampleRecords(160);

  agent.Run([&](ScriptedAgent::Session& session) {
    ASSERT_TRUE(session.Handshake());
    // Accept and ack exactly one chunk, then die.
    auto frame = session.Read();
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, FrameType::kChunk);
    auto chunk = DecodeChunk(*frame);
    ASSERT_TRUE(chunk.ok());
    session.Write(EncodeChunkAck(ChunkAckFrame{.seq = chunk->seq}));
  });

  ControllerOptions options;
  options.agents = {agent.endpoint()};
  options.chunk_records = 16;
  options.credit_window = 2;
  options.config.fast_mode = true;
  auto report = RunDistributedReplay(records, options);
  agent.Join();
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->failed);
  EXPECT_NE(report->error.find("agent 0"), std::string::npos)
      << report->error;
  ASSERT_EQ(report->agents.size(), 1u);
  // Partial accounting survives: some records were shipped, none lost
  // silently — the run is marked failed instead.
  EXPECT_GT(report->agents[0].records_sent, 0u);
  EXPECT_FALSE(report->agents[0].completed);
  EXPECT_FALSE(report->agents[0].error.empty());
}

TEST(ControllerTest, ConnectTimeFailureDropsAgentAndContinues) {
  ScriptedAgent live;
  // A port with nothing listening: bind, no listen() — immediate RST.
  int dead_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(dead_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(dead_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  Endpoint dead{IpAddress::Loopback(), ntohs(addr.sin_port)};

  const auto records = SampleRecords(32);
  live.Run([&](ScriptedAgent::Session& session) {
    ASSERT_TRUE(session.Handshake());
    uint64_t seen = 0;
    while (auto frame = session.Read()) {
      if (frame->type == FrameType::kChunk) {
        auto chunk = DecodeChunk(*frame);
        ASSERT_TRUE(chunk.ok());
        seen += chunk->records.size();
        session.Write(EncodeChunkAck(ChunkAckFrame{.seq = chunk->seq}));
      } else if (frame->type == FrameType::kInputDone) {
        ReportFrame report;
        report.report.sent = seen;
        report.report.answered = seen;
        session.Write(EncodeReport(report));
      } else if (frame->type == FrameType::kBye) {
        break;
      }
    }
  });

  ControllerOptions options;
  options.agents = {dead, live.endpoint()};
  options.chunk_records = 8;
  options.config.fast_mode = true;
  auto report = RunDistributedReplay(records, options);
  live.Join();
  ::close(dead_fd);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_FALSE(report->failed) << report->error;
  ASSERT_EQ(report->agents.size(), 2u);
  EXPECT_FALSE(report->agents[0].connected);
  EXPECT_EQ(report->agents[0].records_sent, 0u);
  // The survivor absorbed the whole trace.
  EXPECT_TRUE(report->agents[1].completed);
  EXPECT_EQ(report->agents[1].records_sent, records.size());
  EXPECT_TRUE(report->ReconcileDiffs().empty());
}

// --- end to end: real agents, real replay engine, real DNS server ---

std::shared_ptr<server::AuthServerEngine> MakeEngine() {
  auto zone = zone::ParseMasterFile(
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.53\n"
      "* IN A 192.0.2.200\n",
      zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<server::AuthServerEngine>(std::move(views));
}

// One in-process agent: its own loop on its own thread, exactly like a
// separate ldp_replay_agent process would run.
struct TestAgent {
  std::unique_ptr<net::EventLoop> loop;
  std::unique_ptr<AgentServer> server;
  std::thread thread;

  static std::unique_ptr<TestAgent> Start() {
    auto agent = std::make_unique<TestAgent>();
    auto loop = net::EventLoop::Create();
    EXPECT_TRUE(loop.ok());
    agent->loop = std::move(*loop);
    auto server = AgentServer::Start(*agent->loop, AgentOptions{});
    EXPECT_TRUE(server.ok()) << server.error().ToString();
    agent->server = std::move(*server);
    agent->thread = std::thread([raw = agent.get()] { raw->loop->Run(); });
    return agent;
  }

  ~TestAgent() {
    if (thread.joinable()) {
      loop->RequestStop();
      thread.join();
    }
  }
};

TEST(DistributedReplayTest, LoopbackTwoAgentsZeroLoss) {
  auto server_loop = net::EventLoop::Create();
  ASSERT_TRUE(server_loop.ok());
  server::SocketDnsServer::Config server_config;
  server_config.listen = Endpoint{IpAddress::Loopback(), 0};
  auto dns = server::SocketDnsServer::Start(**server_loop, MakeEngine(),
                                            server_config);
  ASSERT_TRUE(dns.ok()) << dns.error().ToString();
  std::thread server_thread([&] { (*server_loop)->Run(); });

  auto agent0 = TestAgent::Start();
  auto agent1 = TestAgent::Start();

  auto records = SampleRecords(300);
  for (auto& record : records) {
    record.dst = (*dns)->endpoint().addr;
    record.dst_port = (*dns)->endpoint().port;
  }

  ControllerOptions options;
  options.agents = {agent0->server->local(), agent1->server->local()};
  options.config.server = (*dns)->endpoint();
  options.config.n_distributors = 1;
  options.config.queriers_per_distributor = 2;
  options.config.lookahead = Millis(100);
  options.chunk_records = 32;
  options.stats_interval = Millis(100);

  auto report = RunDistributedReplay(records, options);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_FALSE(report->failed) << report->error;

  // Agents shut their loops down after BYE; join before inspecting.
  agent0->thread.join();
  agent1->thread.join();
  EXPECT_TRUE(agent0->server->result().ok())
      << agent0->server->result().error().ToString();
  EXPECT_TRUE(agent1->server->result().ok())
      << agent1->server->result().error().ToString();

  // Zero loss over loopback, fully reconciled across processes.
  EXPECT_EQ(report->merged.sent, records.size());
  EXPECT_EQ(report->merged.answered, records.size());
  EXPECT_TRUE(report->merged.OutcomesReconcile());
  auto diffs = report->ReconcileDiffs();
  EXPECT_TRUE(diffs.empty()) << diffs.front();
  // Both agents did real work (20 clients spread across the ring), and
  // every client stuck to one agent: shipped totals partition the trace.
  EXPECT_GT(report->agents[0].records_sent, 0u);
  EXPECT_GT(report->agents[1].records_sent, 0u);
  EXPECT_EQ(report->agents[0].records_sent + report->agents[1].records_sent,
            records.size());
  // Per-agent metrics snapshots arrived and carry the outcome counters.
  for (const auto& agent : report->agents) {
    EXPECT_TRUE(agent.has_report);
    EXPECT_EQ(agent.final_metrics.CounterValue("replay.sent"),
              agent.report.sent);
  }
  // Merged metrics cover the whole run.
  EXPECT_EQ(report->merged_metrics.CounterValue("replay.sent"),
            records.size());

  (*server_loop)->RequestStop();
  server_thread.join();
}

// Regression (fuzz_distrib target): a CHUNK body claiming 2^20 records in
// 8 bytes reserved the full count before reading a single record — a
// remote-triggered allocation amplifier. The decode must fail cheaply.
TEST(ProtocolTest, ChunkCountLargerThanBodyFailsWithoutReserving) {
  Frame frame;
  frame.type = FrameType::kChunk;
  frame.body = {0x00, 0x00, 0x00, 0x00,   // seq
                0x00, 0x10, 0x00, 0x00};  // count = 1'048'576, no records
  auto chunk = DecodeChunk(frame);
  ASSERT_FALSE(chunk.ok());
}

TEST(ProtocolTest, FrameAssemblerPoisonedAfterBadLength) {
  FrameAssembler assembler;
  Bytes bad = {0x00, 0x00, 0x00, 0x00, 0x07};  // zero-length frame
  ASSERT_FALSE(assembler.Feed(bad).ok());
  // Sticky: even a well-formed BYE frame is rejected afterwards.
  EXPECT_FALSE(assembler.Feed(EncodeBye()).ok());
  EXPECT_FALSE(assembler.Next().has_value());
}

}  // namespace
}  // namespace ldp::distrib
