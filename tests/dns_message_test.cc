#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.h"
#include "common/strings.h"
#include "dns/framing.h"
#include "dns/message.h"
#include "dns/rdata.h"

namespace ldp::dns {
namespace {

Message SampleResponse() {
  Message msg;
  msg.id = 0x1234;
  msg.qr = true;
  msg.aa = true;
  msg.rd = true;
  msg.ra = true;
  msg.rcode = Rcode::kNoError;
  msg.questions.push_back(
      Question{*Name::Parse("www.example.com"), RRType::kA, RRClass::kIN});
  msg.answers.push_back(ResourceRecord{*Name::Parse("www.example.com"),
                                       RRType::kA, RRClass::kIN, 300,
                                       ARdata{IpAddress(192, 0, 2, 1)}});
  msg.authorities.push_back(ResourceRecord{
      *Name::Parse("example.com"), RRType::kNS, RRClass::kIN, 86400,
      NsRdata{*Name::Parse("ns1.example.com")}});
  msg.additionals.push_back(ResourceRecord{*Name::Parse("ns1.example.com"),
                                           RRType::kA, RRClass::kIN, 86400,
                                           ARdata{IpAddress(192, 0, 2, 53)}});
  return msg;
}

TEST(Message, EncodeDecodeRoundTrip) {
  Message msg = SampleResponse();
  Bytes wire = msg.Encode();
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, msg.id);
  EXPECT_TRUE(decoded->qr);
  EXPECT_TRUE(decoded->aa);
  EXPECT_EQ(decoded->questions, msg.questions);
  EXPECT_EQ(decoded->answers, msg.answers);
  EXPECT_EQ(decoded->authorities, msg.authorities);
  EXPECT_EQ(decoded->additionals, msg.additionals);
  EXPECT_FALSE(decoded->edns.has_value());
}

TEST(Message, QueryHelper) {
  Message q = Message::MakeQuery(*Name::Parse("example.com"), RRType::kMX,
                                 /*recursion_desired=*/true);
  EXPECT_FALSE(q.qr);
  EXPECT_TRUE(q.rd);
  ASSERT_EQ(q.questions.size(), 1u);
  EXPECT_EQ(q.questions[0].type, RRType::kMX);
}

TEST(Message, EdnsRoundTrip) {
  Message msg = SampleResponse();
  msg.edns = Edns{.udp_payload_size = 4096, .do_bit = true};
  Bytes wire = msg.Encode();
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->edns.has_value());
  EXPECT_EQ(decoded->edns->udp_payload_size, 4096);
  EXPECT_TRUE(decoded->edns->do_bit);
  EXPECT_EQ(decoded->edns->version, 0);
}

TEST(Message, ExtendedRcode) {
  Message msg;
  msg.qr = true;
  msg.rcode = static_cast<Rcode>(16);  // BADVERS needs the extended bits
  msg.edns = Edns{};
  msg.edns->extended_rcode_high = 1;
  Bytes wire = msg.Encode();
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(static_cast<uint16_t>(decoded->rcode), 16);
}

TEST(Message, CompressionReducesSize) {
  Message msg = SampleResponse();
  Bytes wire = msg.Encode();
  // Uncompressed lower bound: each of the 4 names spelled out in full.
  size_t uncompressed = 12;
  uncompressed += Name::Parse("www.example.com")->WireLength() + 4;
  uncompressed += Name::Parse("www.example.com")->WireLength() + 10 + 4;
  uncompressed += Name::Parse("example.com")->WireLength() + 10 +
                  Name::Parse("ns1.example.com")->WireLength();
  uncompressed += Name::Parse("ns1.example.com")->WireLength() + 10 + 4;
  EXPECT_LT(wire.size(), uncompressed);
}

TEST(Message, TruncationSetsTcAndKeepsQuestion) {
  Message msg = SampleResponse();
  // Many answers so that a 512-byte limit overflows.
  for (int i = 0; i < 60; ++i) {
    msg.answers.push_back(
        ResourceRecord{*Name::Parse("www.example.com"), RRType::kTXT,
                       RRClass::kIN, 60,
                       TxtRdata{{std::string(40, 'x') + std::to_string(i)}}});
  }
  Bytes wire = msg.Encode(512);
  ASSERT_LE(wire.size(), 512u);
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->tc);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_LT(decoded->answers.size(), msg.answers.size());
}

TEST(Message, TruncationKeepsEdns) {
  Message msg = SampleResponse();
  msg.edns = Edns{.udp_payload_size = 512, .do_bit = true};
  for (int i = 0; i < 60; ++i) {
    msg.answers.push_back(
        ResourceRecord{*Name::Parse("www.example.com"), RRType::kTXT,
                       RRClass::kIN, 60, TxtRdata{{std::string(40, 'y')}}});
  }
  Bytes wire = msg.Encode(512);
  ASSERT_LE(wire.size(), 512u);
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->tc);
  EXPECT_TRUE(decoded->edns.has_value());
}

TEST(Message, Matches) {
  Message q = Message::MakeQuery(*Name::Parse("a.example"), RRType::kA, true);
  q.id = 77;
  Message r = SampleResponse();
  r.id = 77;
  r.questions = q.questions;
  EXPECT_TRUE(r.Matches(q));
  r.id = 78;
  EXPECT_FALSE(r.Matches(q));
  r.id = 77;
  r.questions[0].type = RRType::kAAAA;
  EXPECT_FALSE(r.Matches(q));
  EXPECT_FALSE(q.Matches(q));  // a query does not match itself (qr unset)
}

TEST(Message, DecodeRejectsGarbage) {
  Bytes garbage{0x01, 0x02, 0x03};
  EXPECT_FALSE(Message::Decode(garbage).ok());
}

TEST(Message, DecodeEmptyQuery) {
  Message q = Message::MakeQuery(*Name::Parse("example.com"), RRType::kSOA,
                                 false);
  q.id = 9;
  auto decoded = Message::Decode(q.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 9);
  EXPECT_FALSE(decoded->rd);
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(Rdata, SoaRoundTripText) {
  SoaRdata soa{*Name::Parse("ns1.example.com"),
               *Name::Parse("admin.example.com"),
               2024010101, 7200, 3600, 1209600, 3600};
  std::string text = RdataToText(soa);
  std::vector<std::string_view> tokens;
  auto parts = ldp::SplitWhitespace(text);
  tokens.assign(parts.begin(), parts.end());
  auto parsed = RdataFromText(RRType::kSOA, tokens);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<SoaRdata>(*parsed), soa);
}

TEST(Rdata, NsecBitmapRoundTrip) {
  NsecRdata nsec{*Name::Parse("b.example.com"),
                 {RRType::kA, RRType::kNS, RRType::kRRSIG, RRType::kCAA}};
  NameCompressor compressor;
  ByteWriter w;
  EncodeRdata(nsec, compressor, w);
  ByteReader r(w.data());
  auto decoded = DecodeRdata(RRType::kNSEC, static_cast<uint16_t>(w.size()), r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<NsecRdata>(*decoded), nsec);
}

TEST(Rdata, GenericRfc3597) {
  GenericRdata generic{{0xde, 0xad, 0xbe, 0xef}};
  EXPECT_EQ(RdataToText(generic), "\\# 4 deadbeef");
  std::vector<std::string_view> tokens{"\\#", "4", "deadbeef"};
  auto parsed = RdataFromText(static_cast<RRType>(999), tokens);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<GenericRdata>(*parsed), generic);
  // Length mismatch rejected.
  std::vector<std::string_view> bad{"\\#", "3", "deadbeef"};
  EXPECT_FALSE(RdataFromText(static_cast<RRType>(999), bad).ok());
}

TEST(Rdata, WireLengths) {
  EXPECT_EQ(RdataWireLength(ARdata{IpAddress(1, 2, 3, 4)}), 4u);
  EXPECT_EQ(RdataWireLength(AaaaRdata{}), 16u);
  EXPECT_EQ(RdataWireLength(MxRdata{10, *Name::Parse("a.b")}),
            2u + Name::Parse("a.b")->WireLength());
}

TEST(Framing, FrameAndReassemble) {
  Message msg = SampleResponse();
  Bytes wire = msg.Encode();
  Bytes framed = std::move(FrameMessage(wire)).value();
  EXPECT_EQ(framed.size(), wire.size() + 2);

  StreamAssembler assembler;
  // Feed byte-by-byte to exercise partial reads.
  for (uint8_t b : framed) {
    ASSERT_TRUE(assembler.Feed(std::span<const uint8_t>(&b, 1)).ok());
  }
  auto out = assembler.NextMessage();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, wire);
  EXPECT_FALSE(assembler.NextMessage().has_value());
  EXPECT_EQ(assembler.pending_bytes(), 0u);
}

TEST(Framing, MultipleMessagesOneChunk) {
  Bytes a = SampleResponse().Encode();
  Message q = Message::MakeQuery(*Name::Parse("x.example"), RRType::kA, true);
  Bytes b = q.Encode();
  Bytes stream = std::move(FrameMessage(a)).value();
  Bytes framed_b = std::move(FrameMessage(b)).value();
  stream.insert(stream.end(), framed_b.begin(), framed_b.end());

  StreamAssembler assembler;
  ASSERT_TRUE(assembler.Feed(stream).ok());
  EXPECT_EQ(assembler.ready_messages(), 2u);
  EXPECT_EQ(*assembler.NextMessage(), a);
  EXPECT_EQ(*assembler.NextMessage(), b);
}

TEST(Framing, RejectsZeroLengthFrame) {
  Bytes zero{0x00, 0x00};
  StreamAssembler assembler;
  EXPECT_FALSE(assembler.Feed(zero).ok());
}

// Property test: random messages round-trip through encode/decode.
class MessageRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessageRoundTrip, RandomMessages) {
  ldp::Rng rng(GetParam());
  auto random_name = [&]() {
    int labels = 1 + static_cast<int>(rng.NextBelow(4));
    std::string text;
    for (int i = 0; i < labels; ++i) {
      int len = 1 + static_cast<int>(rng.NextBelow(10));
      for (int j = 0; j < len; ++j) {
        text += static_cast<char>('a' + rng.NextBelow(26));
      }
      text += '.';
    }
    return *Name::Parse(text);
  };

  for (int trial = 0; trial < 20; ++trial) {
    Message msg;
    msg.id = static_cast<uint16_t>(rng.NextU64());
    msg.qr = rng.NextBool(0.5);
    msg.aa = rng.NextBool(0.5);
    msg.rd = rng.NextBool(0.5);
    msg.rcode = rng.NextBool(0.8) ? Rcode::kNoError : Rcode::kNxDomain;
    msg.questions.push_back(Question{random_name(), RRType::kA, RRClass::kIN});
    int n_answers = static_cast<int>(rng.NextBelow(5));
    for (int i = 0; i < n_answers; ++i) {
      Rdata rdata;
      switch (rng.NextBelow(5)) {
        case 0: rdata = ARdata{IpAddress(static_cast<uint32_t>(rng.NextU64()))}; break;
        case 1: rdata = NsRdata{random_name()}; break;
        case 2: rdata = CnameRdata{random_name()}; break;
        case 3: rdata = MxRdata{static_cast<uint16_t>(rng.NextU64()), random_name()}; break;
        default: rdata = TxtRdata{{"hello world"}}; break;
      }
      msg.answers.push_back(ResourceRecord{
          random_name(), RdataType(rdata), RRClass::kIN,
          static_cast<uint32_t>(rng.NextBelow(86400)), std::move(rdata)});
    }
    if (rng.NextBool(0.5)) {
      msg.edns = Edns{.udp_payload_size =
                          static_cast<uint16_t>(512 + rng.NextBelow(4096)),
                      .do_bit = rng.NextBool(0.5)};
    }

    Bytes wire = msg.Encode();
    auto decoded = Message::Decode(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
    EXPECT_EQ(decoded->questions, msg.questions);
    EXPECT_EQ(decoded->answers, msg.answers);
    EXPECT_EQ(decoded->edns.has_value(), msg.edns.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 99));

// Regression: FrameMessage used to write wire.size() into the 2-byte
// length prefix unchecked, silently truncating payloads over 65535 bytes
// into a corrupt frame that desynced the peer's stream.
TEST(Framing, FrameMessageRejectsOversizedPayload) {
  Bytes big(65536, 0xaa);
  auto framed = FrameMessage(big);
  ASSERT_FALSE(framed.ok());
  EXPECT_EQ(framed.error().code(), ErrorCode::kOutOfRange);

  Bytes max(65535, 0xaa);
  auto ok = FrameMessage(max);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0], 0xff);
  EXPECT_EQ((*ok)[1], 0xff);
  EXPECT_EQ(ok->size(), 65537u);
}

TEST(Framing, FrameMessageRejectsEmptyPayload) {
  EXPECT_FALSE(FrameMessage({}).ok());
}

TEST(Framing, AssemblerDropsWhenBacklogFull) {
  Bytes one = std::move(FrameMessage(SampleResponse().Encode())).value();
  Bytes flood;
  for (int i = 0; i < 10; ++i) {
    flood.insert(flood.end(), one.begin(), one.end());
  }

  StreamAssembler assembler;
  std::atomic<uint64_t> metric{0};
  assembler.set_limits({.max_ready_messages = 3, .max_ready_bytes = 1 << 20});
  assembler.set_drop_counter(&metric);
  ASSERT_TRUE(assembler.Feed(flood).ok());  // flooding is not a frame error

  size_t delivered = 0;
  while (assembler.NextMessage()) ++delivered;
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(assembler.dropped_messages(), 7u);
  EXPECT_EQ(metric.load(), 7u);

  // Draining freed the backlog: new frames flow again.
  ASSERT_TRUE(assembler.Feed(one).ok());
  EXPECT_TRUE(assembler.NextMessage().has_value());
}

TEST(Framing, AssemblerByteLimitCountsDrops) {
  Bytes one = std::move(FrameMessage(SampleResponse().Encode())).value();
  StreamAssembler assembler;
  assembler.set_limits(
      {.max_ready_messages = 100, .max_ready_bytes = one.size()});
  Bytes flood;
  for (int i = 0; i < 3; ++i) flood.insert(flood.end(), one.begin(), one.end());
  ASSERT_TRUE(assembler.Feed(flood).ok());
  EXPECT_EQ(assembler.ready_messages(), 1u);
  EXPECT_EQ(assembler.dropped_messages(), 2u);
}

// Regression (found by fuzz_framing): an error mid-buffer left consumed
// frames in place, so a caller that kept feeding saw every already
// delivered message again.
TEST(Framing, AssemblerPoisonedAfterError) {
  Bytes msg = std::move(FrameMessage(SampleResponse().Encode())).value();
  Bytes stream = msg;
  stream.push_back(0);  // zero-length frame
  stream.push_back(0);

  StreamAssembler assembler;
  EXPECT_FALSE(assembler.Feed(stream).ok());
  // The message completed before the error is delivered exactly once.
  EXPECT_TRUE(assembler.NextMessage().has_value());
  EXPECT_FALSE(assembler.NextMessage().has_value());
  // Poisoned: further input keeps failing and never re-delivers.
  EXPECT_FALSE(assembler.Feed(msg).ok());
  EXPECT_FALSE(assembler.NextMessage().has_value());
}

// Regression: header counts promising more records than the message has
// bytes must be rejected up front, not ground through 4x65535 decode
// attempts.
TEST(MessageDecode, RejectsCountsLargerThanMessage) {
  Bytes wire = {0x00, 0x01, 0x00, 0x00, 0xff, 0xff,
                0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  auto msg = Message::Decode(wire);
  ASSERT_FALSE(msg.ok());
  EXPECT_EQ(msg.error().code(), ErrorCode::kTruncated);
}

TEST(MessageDecode, AcceptsCountsThatBarelyFit) {
  // A real message close to the minimum per-record size still decodes.
  Message msg = Message::MakeQuery(*Name::Parse("a.b"), RRType::kA, true);
  EXPECT_TRUE(Message::Decode(msg.Encode()).ok());
}

}  // namespace
}  // namespace ldp::dns
