#include <gtest/gtest.h>

#include "dns/name.h"

namespace ldp::dns {
namespace {

TEST(Name, ParseBasics) {
  auto name = Name::Parse("www.Example.COM");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->ToString(), "www.Example.COM.");
  EXPECT_FALSE(name->IsRoot());
}

TEST(Name, ParseRoot) {
  auto root = Name::Parse(".");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->IsRoot());
  EXPECT_EQ(root->ToString(), ".");
  EXPECT_EQ(root->WireLength(), 1u);
}

TEST(Name, TrailingDotOptional) {
  EXPECT_EQ(Name::Parse("a.b.")->ToString(), Name::Parse("a.b")->ToString());
}

TEST(Name, ParseRejectsBadInput) {
  EXPECT_FALSE(Name::Parse("").ok());
  EXPECT_FALSE(Name::Parse("a..b").ok());
  EXPECT_FALSE(Name::Parse(std::string(64, 'a') + ".com").ok());
  // > 255 octets total.
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcdef.";
  EXPECT_FALSE(Name::Parse(long_name).ok());
}

TEST(Name, Escapes) {
  auto name = Name::Parse("a\\.b.example");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->label_count(), 2u);
  EXPECT_EQ(name->labels()[0], "a.b");
  EXPECT_EQ(name->ToString(), "a\\.b.example.");

  auto ddd = Name::Parse("a\\032b.example");
  ASSERT_TRUE(ddd.ok());
  EXPECT_EQ(ddd->labels()[0], "a b");

  EXPECT_FALSE(Name::Parse("a\\").ok());
  EXPECT_FALSE(Name::Parse("a\\999b").ok());
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(*Name::Parse("WWW.EXAMPLE.COM"), *Name::Parse("www.example.com"));
  EXPECT_NE(*Name::Parse("www.example.com"), *Name::Parse("example.com"));
  EXPECT_EQ(Name::Parse("WWW.EXAMPLE.COM")->Hash(),
            Name::Parse("www.example.com")->Hash());
}

TEST(Name, ParentChild) {
  auto name = *Name::Parse("www.example.com");
  auto parent = name.Parent();
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->ToString(), "example.com.");
  EXPECT_FALSE(Name::Root().Parent().ok());

  auto child = parent->Child("mail");
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(child->ToString(), "mail.example.com.");
}

TEST(Name, Subdomain) {
  auto com = *Name::Parse("com");
  auto example = *Name::Parse("example.com");
  auto www = *Name::Parse("www.example.com");
  EXPECT_TRUE(www.IsSubdomainOf(example));
  EXPECT_TRUE(www.IsSubdomainOf(com));
  EXPECT_TRUE(www.IsSubdomainOf(Name::Root()));
  EXPECT_TRUE(example.IsSubdomainOf(example));
  EXPECT_FALSE(example.IsSubdomainOf(www));
  EXPECT_FALSE((*Name::Parse("notexample.com")).IsSubdomainOf(example));
}

TEST(Name, Wildcard) {
  auto wc = *Name::Parse("*.example.com");
  EXPECT_TRUE(wc.IsWildcard());
  EXPECT_FALSE(Name::Parse("www.example.com")->IsWildcard());

  auto sibling = Name::Parse("a.b.example.com")->AsWildcardSibling();
  ASSERT_TRUE(sibling.ok());
  EXPECT_EQ(sibling->ToString(), "*.b.example.com.");
  EXPECT_FALSE(Name::Root().AsWildcardSibling().ok());
}

TEST(Name, CanonicalOrdering) {
  // RFC 4034 §6.1 example order.
  auto a = *Name::Parse("example.com");
  auto b = *Name::Parse("a.example.com");
  auto c = *Name::Parse("yljkjljk.a.example.com");
  auto d = *Name::Parse("z.a.example.com");
  auto e = *Name::Parse("zabc.a.example.com");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_LT(d, e);
  EXPECT_FALSE(b < a);
}

TEST(NameWire, EncodeDecodeUncompressed) {
  auto name = *Name::Parse("www.example.com");
  ByteWriter w;
  EncodeNameUncompressed(name, w);
  EXPECT_EQ(w.size(), name.WireLength());

  ByteReader r(w.data());
  auto decoded = DecodeName(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, name);
  EXPECT_TRUE(r.AtEnd());
}

TEST(NameWire, CompressionSharesSuffix) {
  NameCompressor compressor;
  ByteWriter w;
  auto first = *Name::Parse("www.example.com");
  auto second = *Name::Parse("mail.example.com");
  compressor.Encode(first, w);
  size_t first_len = w.size();
  compressor.Encode(second, w);
  // "mail" label (5 bytes) + 2-byte pointer instead of full encoding.
  EXPECT_EQ(w.size() - first_len, 5u + 2u);

  ByteReader r(w.data());
  EXPECT_EQ(*DecodeName(r), first);
  EXPECT_EQ(*DecodeName(r), second);
}

TEST(NameWire, CompressionIsCaseInsensitive) {
  NameCompressor compressor;
  ByteWriter w;
  compressor.Encode(*Name::Parse("www.EXAMPLE.com"), w);
  size_t first_len = w.size();
  compressor.Encode(*Name::Parse("example.COM"), w);
  EXPECT_EQ(w.size() - first_len, 2u);  // pure pointer
}

TEST(NameWire, DecodeRejectsPointerLoop) {
  // A pointer pointing at itself.
  Bytes evil{0xc0, 0x00};
  ByteReader r(evil);
  EXPECT_FALSE(DecodeName(r).ok());
}

TEST(NameWire, DecodeRejectsForwardPointer) {
  Bytes evil{0xc0, 0x04, 0x00, 0x00, 0x01, 'a', 0x00};
  ByteReader r(evil);
  EXPECT_FALSE(DecodeName(r).ok());
}

TEST(NameWire, DecodeRejectsReservedLabelType) {
  Bytes evil{0x80, 0x01, 0x00};
  ByteReader r(evil);
  EXPECT_FALSE(DecodeName(r).ok());
}

TEST(NameWire, DecodeTruncated) {
  Bytes partial{0x03, 'w', 'w'};
  ByteReader r(partial);
  EXPECT_FALSE(DecodeName(r).ok());
}

TEST(NameWire, PointerChainDecodes) {
  // "example.com" at offset 0; "www" + pointer at offset 13;
  // pointer-only name at offset 18 pointing at the www name.
  ByteWriter w;
  NameCompressor compressor;
  compressor.Encode(*Name::Parse("example.com"), w);
  size_t www_offset = w.size();
  compressor.Encode(*Name::Parse("www.example.com"), w);
  w.WriteU16(static_cast<uint16_t>(0xc000 | www_offset));

  ByteReader r(w.data());
  ASSERT_TRUE(r.Seek(w.size() - 2).ok());
  auto name = DecodeName(r);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->ToString(), "www.example.com.");
  EXPECT_TRUE(r.AtEnd());
}

TEST(NameWire, CursorAdvancesPastPointer) {
  ByteWriter w;
  NameCompressor compressor;
  compressor.Encode(*Name::Parse("example.com"), w);
  size_t start = w.size();
  compressor.Encode(*Name::Parse("example.com"), w);  // emits 2-byte pointer
  w.WriteU8(0xaa);  // sentinel after the pointer

  ByteReader r(w.data());
  ASSERT_TRUE(r.Seek(start).ok());
  ASSERT_TRUE(DecodeName(r).ok());
  EXPECT_EQ(r.ReadU8().value(), 0xaa);
}

// Labels containing master-file structural characters must escape them in
// presentation form and round-trip through Parse (fuzz_zone regression:
// a bare leading '$' reparsed as a directive).
TEST(NameEscaping, StructuralCharactersRoundTrip) {
  for (const char* raw : {"$", "@", "a b", "a;b", "(x)", "a$b"}) {
    Name name = *Name::FromLabels({raw, "example"});
    std::string text = name.ToString();
    // No raw structural characters may survive in the rendering.
    EXPECT_EQ(text.find(' '), std::string::npos) << text;
    EXPECT_EQ(text.find(';'), std::string::npos) << text;
    EXPECT_EQ(text.find('('), std::string::npos) << text;
    EXPECT_EQ(text.find(')'), std::string::npos) << text;
    EXPECT_NE(text[0], '$') << text;
    auto reparsed = Name::Parse(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    EXPECT_EQ(*reparsed, name) << text;
  }
}

}  // namespace
}  // namespace ldp::dns
