// Edge cases of the authoritative engine: opcode handling, AXFR across
// split-horizon views, empty questions, stats accounting.
#include <gtest/gtest.h>

#include "server/engine.h"
#include "zone/masterfile.h"

namespace ldp::server {
namespace {

zone::ZonePtr MakeZone(const std::string& origin_label) {
  std::string text = "$ORIGIN " + origin_label +
                     ".\n@ 60 IN SOA ns1 admin 1 2 3 4 5\n@ IN NS ns1\n"
                     "ns1 IN A 192.0.2.1\nwww IN A 192.0.2.2\n";
  auto zone = zone::ParseMasterFile(text, zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  return std::make_shared<zone::Zone>(std::move(*zone));
}

TEST(EngineEdge, NonQueryOpcodeGetsNotImp) {
  zone::ViewTable views;
  zone::ZoneSet set;
  ASSERT_TRUE(set.AddZone(MakeZone("a")).ok());
  views.SetDefaultView(std::move(set));
  AuthServerEngine engine(std::move(views));

  auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.a"),
                                       dns::RRType::kA, false);
  query.opcode = dns::Opcode::kUpdate;
  auto response = engine.HandleQuery(query, IpAddress(1, 1, 1, 1));
  EXPECT_EQ(response.rcode, dns::Rcode::kNotImp);
}

TEST(EngineEdge, EmptyQuestionRefusedGracefully) {
  zone::ViewTable views;
  AuthServerEngine engine(std::move(views));
  dns::Message query;
  query.id = 3;
  auto response = engine.HandleQuery(query, IpAddress(1, 1, 1, 1));
  EXPECT_TRUE(response.qr);
  EXPECT_EQ(response.id, 3);
  EXPECT_EQ(response.rcode, dns::Rcode::kRefused);
}

TEST(EngineEdge, AxfrRespectsSplitHorizon) {
  // Zone "secret" is only in the view for 10.0.0.5; AXFR from another
  // source must NOTAUTH even though the zone exists on the server.
  zone::ViewTable views;
  zone::ZoneSet member_view;
  ASSERT_TRUE(member_view.AddZone(MakeZone("secret")).ok());
  ASSERT_TRUE(
      views.AddView("members", {IpAddress(10, 0, 0, 5)}, std::move(member_view))
          .ok());
  AuthServerEngine engine(std::move(views));

  dns::Message axfr;
  axfr.id = 11;
  axfr.questions.push_back(dns::Question{*dns::Name::Parse("secret"),
                                         dns::RRType::kAXFR,
                                         dns::RRClass::kIN});

  auto allowed = engine.HandleAxfr(axfr, IpAddress(10, 0, 0, 5));
  ASSERT_TRUE(allowed.ok());
  ASSERT_GE(allowed->size(), 1u);
  auto first = dns::Message::Decode(allowed->front());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->rcode, dns::Rcode::kNoError);
  EXPECT_FALSE(first->answers.empty());
  EXPECT_EQ(first->answers.front().type, dns::RRType::kSOA);

  auto denied = engine.HandleAxfr(axfr, IpAddress(10, 0, 0, 6));
  ASSERT_TRUE(denied.ok());
  ASSERT_EQ(denied->size(), 1u);
  auto refusal = dns::Message::Decode(denied->front());
  ASSERT_TRUE(refusal.ok());
  EXPECT_EQ(refusal->rcode, dns::Rcode::kNotAuth);
  EXPECT_TRUE(refusal->answers.empty());
}

TEST(EngineEdge, AxfrStreamIsSoaDelimited) {
  zone::ViewTable views;
  zone::ZoneSet set;
  ASSERT_TRUE(set.AddZone(MakeZone("t")).ok());
  views.SetDefaultView(std::move(set));
  AuthServerEngine engine(std::move(views));

  dns::Message axfr;
  axfr.questions.push_back(dns::Question{*dns::Name::Parse("t"),
                                         dns::RRType::kAXFR,
                                         dns::RRClass::kIN});
  auto messages = engine.HandleAxfr(axfr, IpAddress(9, 9, 9, 9));
  ASSERT_TRUE(messages.ok());

  std::vector<dns::ResourceRecord> all;
  for (const auto& wire : *messages) {
    auto decoded = dns::Message::Decode(wire);
    ASSERT_TRUE(decoded.ok());
    for (const auto& rr : decoded->answers) all.push_back(rr);
  }
  ASSERT_GE(all.size(), 2u);
  EXPECT_EQ(all.front().type, dns::RRType::kSOA);
  EXPECT_EQ(all.back().type, dns::RRType::kSOA);
  // Every original record appears exactly once between the SOAs (the two
  // SOA copies are the same record).
  EXPECT_EQ(all.size(), 1u + 4u);  // SOA + NS + 2*A + terminal SOA == 5
}

TEST(EngineEdge, StatsAccounting) {
  zone::ViewTable views;
  zone::ZoneSet set;
  ASSERT_TRUE(set.AddZone(MakeZone("s")).ok());
  views.SetDefaultView(std::move(set));
  AuthServerEngine engine(std::move(views));

  auto ask = [&](const char* name) {
    auto query = dns::Message::MakeQuery(*dns::Name::Parse(name),
                                         dns::RRType::kA, false);
    auto wire = engine.HandleWire(query.Encode(), IpAddress(2, 2, 2, 2), 65535);
    EXPECT_TRUE(wire.ok());
  };
  ask("www.s");     // answer
  ask("missing.s"); // nxdomain
  ask("other.tld"); // refused (out of zone)
  Bytes garbage{9, 9};
  auto dropped = engine.HandleWire(garbage, IpAddress(2, 2, 2, 2), 0);
  EXPECT_FALSE(dropped.ok());

  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.nxdomain, 1u);
  EXPECT_EQ(stats.refused, 1u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_GT(stats.response_bytes, 0u);
}

}  // namespace
}  // namespace ldp::server
