#include <gtest/gtest.h>

#include "common/flags.h"

namespace ldp {
namespace {

Flags ParseArgs(std::vector<std::string> args,
                std::vector<std::string> booleans = {}) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& arg : storage) argv.push_back(arg.data());
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data(),
                            booleans);
  EXPECT_TRUE(flags.ok());
  return std::move(*flags);
}

TEST(Flags, KeyValueForms) {
  Flags flags = ParseArgs({"--rate=500", "--name", "b-root", "file.bin"});
  EXPECT_EQ(flags.GetInt("rate", 0).value(), 500);
  EXPECT_EQ(flags.GetString("name", ""), "b-root");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "file.bin");
}

TEST(Flags, BooleanDoesNotEatPositional) {
  Flags flags = ParseArgs({"--verbose", "input.txt"}, {"verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
}

TEST(Flags, UndeclaredFlagBeforePositionalConsumesIt) {
  Flags flags = ParseArgs({"--mode", "fast"});
  EXPECT_EQ(flags.GetString("mode", ""), "fast");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, HelpIsAlwaysBoolean) {
  Flags flags = ParseArgs({"--help", "cmd"});
  EXPECT_TRUE(flags.GetBool("help", false));
  ASSERT_EQ(flags.positional().size(), 1u);
}

TEST(Flags, TrailingBooleanWithoutValue) {
  Flags flags = ParseArgs({"--fast"});
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_FALSE(flags.GetBool("slow", false));
}

TEST(Flags, TypedGettersValidate) {
  Flags flags = ParseArgs({"--n=abc", "--f=1.5"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("f", 0).value(), 1.5);
  EXPECT_EQ(flags.GetInt("missing", 42).value(), 42);
}

TEST(Flags, RequireKnownCatchesTypos) {
  Flags flags = ParseArgs({"--rate=5", "--typo=1"});
  EXPECT_TRUE(flags.RequireKnown({"rate", "typo"}).ok());
  EXPECT_FALSE(flags.RequireKnown({"rate"}).ok());
}

}  // namespace
}  // namespace ldp
