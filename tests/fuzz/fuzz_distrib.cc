// Distrib wire-protocol fuzz target: FrameAssembler reassembly under
// adversarial chunking, then every typed frame decoder over the frames the
// assembler accepts. For each frame that decodes, the re-encoded form must
// reassemble and be an encode→decode→encode fixed point — our own encoder
// output is the canonical form, so a second pass through it may never
// drift.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <span>

#include "distrib/protocol.h"

namespace {

using namespace ldp;
using namespace ldp::distrib;

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "fuzz_distrib oracle violation: %s\n", what);
  std::abort();
}

// Decodes per wire type; returns the canonical re-encoding when accepted.
std::optional<Bytes> Reencode(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      auto v = DecodeHello(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeHello(*v);
    }
    case FrameType::kHelloAck: {
      auto v = DecodeHelloAck(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeHelloAck(*v);
    }
    case FrameType::kClockPing: {
      auto v = DecodeClockPing(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeClockPing(*v);
    }
    case FrameType::kClockPong: {
      auto v = DecodeClockPong(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeClockPong(*v);
    }
    case FrameType::kStart: {
      auto v = DecodeStart(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeStart(*v);
    }
    case FrameType::kChunk: {
      auto v = DecodeChunk(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeChunk(*v);
    }
    case FrameType::kChunkAck: {
      auto v = DecodeChunkAck(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeChunkAck(*v);
    }
    case FrameType::kInputDone: {
      auto v = DecodeInputDone(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeInputDone(*v);
    }
    case FrameType::kStats: {
      auto v = DecodeStats(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeStats(*v);
    }
    case FrameType::kReport: {
      auto v = DecodeReport(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeReport(*v);
    }
    case FrameType::kError: {
      auto v = DecodeError(frame);
      if (!v.ok()) return std::nullopt;
      return EncodeError(*v);
    }
    case FrameType::kBye:
      return EncodeBye();
  }
  return std::nullopt;  // unknown type byte: no decoder to exercise
}

// Reassembles one sealed frame and checks encode→decode→encode stability.
void CheckCanonical(const Bytes& sealed) {
  FrameAssembler assembler;
  if (!assembler.Feed(sealed).ok()) Fail("re-encoded frame rejected");
  auto frame = assembler.Next();
  if (!frame.has_value()) Fail("re-encoded frame did not reassemble");
  if (assembler.Next().has_value()) Fail("re-encode produced extra frames");
  auto again = Reencode(*frame);
  if (!again.has_value()) Fail("canonical frame does not decode");
  if (*again != sealed) Fail("re-encoding is not a fixed point");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  uint64_t rng = data[0] + 0x9e3779b9u;
  std::span<const uint8_t> stream(data + 1, size - 1);

  FrameAssembler assembler;
  size_t offset = 0;
  bool failed = false;
  while (offset < stream.size()) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    size_t chunk = std::min<size_t>(rng % 9 + 1, stream.size() - offset);
    if (!assembler.Feed(stream.subspan(offset, chunk)).ok()) {
      failed = true;
      break;
    }
    offset += chunk;
    while (auto frame = assembler.Next()) {
      if (auto sealed = Reencode(*frame)) CheckCanonical(*sealed);
    }
  }
  if (failed) {
    const uint8_t more[] = {0, 0, 0, 1, 12};
    if (assembler.Feed(more).ok()) Fail("Feed succeeded after poison");
  }
  return 0;
}
