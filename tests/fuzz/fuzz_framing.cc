// TCP stream-framing fuzz target: StreamAssembler under adversarial chunk
// boundaries. Three oracles:
//   1. Byte-dribble equivalence — feeding the stream in arbitrary small
//      chunks must yield exactly the messages (and final error status) of
//      feeding it in one call.
//   2. Sticky failure — after an error, further Feeds keep failing and no
//      message is ever delivered twice.
//   3. Conservation under backpressure — with tiny limits, every complete
//      frame is either delivered or counted as dropped, never lost or
//      duplicated.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "dns/framing.h"

namespace {

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "fuzz_framing oracle violation: %s\n", what);
  std::abort();
}

void Drain(ldp::dns::StreamAssembler& assembler,
           std::vector<ldp::Bytes>& out) {
  while (auto message = assembler.NextMessage()) {
    out.push_back(std::move(*message));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  // The first input byte seeds the chunk-size sequence so the corpus
  // controls the dribble pattern too.
  uint64_t rng = data[0] + 0x9e3779b9u;
  std::span<const uint8_t> stream(data + 1, size - 1);

  ldp::dns::StreamAssembler whole;
  ldp::Status whole_status = whole.Feed(stream);
  std::vector<ldp::Bytes> whole_messages;
  Drain(whole, whole_messages);

  ldp::dns::StreamAssembler dribble;
  ldp::Status dribble_status = ldp::Status::Ok();
  std::vector<ldp::Bytes> dribble_messages;
  size_t offset = 0;
  while (offset < stream.size() && dribble_status.ok()) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    size_t chunk = std::min<size_t>(rng % 7 + 1, stream.size() - offset);
    dribble_status = dribble.Feed(stream.subspan(offset, chunk));
    offset += chunk;
    Drain(dribble, dribble_messages);
  }
  Drain(dribble, dribble_messages);

  if (whole_status.ok() != dribble_status.ok()) {
    Fail("error status depends on chunk boundaries");
  }
  if (whole_messages != dribble_messages) {
    Fail("delivered messages depend on chunk boundaries");
  }

  if (!whole_status.ok()) {
    // Poisoned: more input must keep failing and deliver nothing new.
    const uint8_t valid[] = {0, 1, 0xab};
    if (whole.Feed(valid).ok()) Fail("Feed succeeded after error");
    if (whole.NextMessage().has_value()) {
      Fail("message delivered after poison drain");
    }
  }

  ldp::dns::StreamAssembler bounded;
  bounded.set_limits({.max_ready_messages = 2, .max_ready_bytes = 64});
  (void)bounded.Feed(stream);
  std::vector<ldp::Bytes> bounded_messages;
  Drain(bounded, bounded_messages);
  if (bounded_messages.size() + bounded.dropped_messages() !=
      whole_messages.size()) {
    Fail("frames lost under backpressure limits");
  }
  return 0;
}
