// Wire-format fuzz target: Message::Decode over arbitrary bytes (header
// counts, name decompression, EDNS, rdata decoders), with a differential
// idempotence oracle — any message we accept must survive
// parse → encode → reparse → re-encode with a byte-identical second
// encoding. A violation means the decoder and encoder disagree about what
// the message *is*, which silently corrupts replayed traces.
#include <cstdio>
#include <cstdlib>

#include "dns/message.h"

namespace {

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "fuzz_wire oracle violation: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using ldp::dns::Message;
  auto msg = Message::Decode({data, size});
  if (!msg.ok()) return 0;  // rejection is fine; crashing is not

  // Rendering must be total for anything the decoder accepts.
  (void)msg->ToText();

  ldp::Bytes first = msg->Encode();
  auto reparsed = Message::Decode(first);
  if (!reparsed.ok()) Fail("encoder output does not reparse");
  ldp::Bytes second = reparsed->Encode();
  if (second != first) Fail("re-encoding is not a fixed point");
  return 0;
}
