// Masterfile-loader fuzz target: ParseMasterFile over arbitrary text
// (tokenizer, directives, RR text parsing), with a serialization
// fixed-point oracle — any zone we accept must serialize, reparse, and
// serialize again to identical text. Zones are canonically ordered maps,
// so the serialized form is deterministic and the fixed point is exact.
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "zone/masterfile.h"

namespace {

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "fuzz_zone oracle violation: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  ldp::zone::MasterFileOptions options;
  auto zone = ldp::zone::ParseMasterFile(text, options);
  if (!zone.ok()) return 0;

  std::string first = ldp::zone::SerializeZone(*zone);
  auto reparsed = ldp::zone::ParseMasterFile(first, options);
  if (!reparsed.ok()) Fail("serialized zone does not reparse");
  std::string second = ldp::zone::SerializeZone(*reparsed);
  if (second != first) Fail("re-serialization is not a fixed point");
  return 0;
}
