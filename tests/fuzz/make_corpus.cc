// Regenerates the checked-in seed corpora under tests/fuzz/corpus/ from the
// real encoders, so seeds stay in sync with the wire formats:
//
//   build-fuzz/tests/fuzz/make_corpus tests/fuzz/corpus
//
// Alongside the encoder-generated seeds, each corpus carries the minimized
// reproducers for the parser bugs this subsystem caught (zero-length
// frames, oversized header counts, chunk-count DoS, masterfile tokenizer
// edge cases); replaying them is the regression gate in verify.sh.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "distrib/protocol.h"
#include "dns/framing.h"
#include "dns/message.h"
#include "zone/masterfile.h"

namespace {

using namespace ldp;

void WriteFile(const std::filesystem::path& path,
               std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "write failed: %s\n", path.c_str());
    std::exit(1);
  }
}

void WriteFile(const std::filesystem::path& path, std::string_view text) {
  WriteFile(path, std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(text.data()),
                      text.size()));
}

// Framing/distrib harnesses treat byte 0 as the chunk-pattern seed.
Bytes Seeded(uint8_t seed, std::initializer_list<Bytes> parts) {
  Bytes out{seed};
  for (const Bytes& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

dns::Name MustName(std::string_view text) {
  return std::move(dns::Name::Parse(text)).value();
}

dns::Message SampleResponse() {
  dns::Message msg;
  msg.id = 0x1d0;
  msg.qr = true;
  msg.aa = true;
  msg.rd = true;
  msg.ra = true;
  msg.questions.push_back(
      {MustName("www.example.com"), dns::RRType::kA, dns::RRClass::kIN});
  msg.answers.push_back({MustName("www.example.com"), dns::RRType::kCNAME,
                         dns::RRClass::kIN, 300,
                         dns::CnameRdata{MustName("host.example.com")}});
  msg.answers.push_back(
      {MustName("host.example.com"), dns::RRType::kA, dns::RRClass::kIN, 300,
       dns::ARdata{std::move(IpAddress::Parse("192.0.2.7")).value()}});
  msg.authorities.push_back({MustName("example.com"), dns::RRType::kNS,
                             dns::RRClass::kIN, 86400,
                             dns::NsRdata{MustName("ns1.example.com")}});
  msg.additionals.push_back(
      {MustName("ns1.example.com"), dns::RRType::kA, dns::RRClass::kIN,
       86400, dns::ARdata{std::move(IpAddress::Parse("192.0.2.53")).value()}});
  msg.additionals.push_back({MustName("example.com"), dns::RRType::kTXT,
                             dns::RRClass::kIN, 60,
                             dns::TxtRdata{{"v=spf1 -all", "b\"s\\l"}}});
  msg.answers.push_back({MustName("example.com"),
                         static_cast<dns::RRType>(999), dns::RRClass::kIN,
                         30, dns::GenericRdata{{0xde, 0xad, 0xbe, 0xef}}});
  msg.edns = dns::Edns{.udp_payload_size = 4096, .do_bit = true};
  return msg;
}

void WriteWireCorpus(const std::filesystem::path& dir) {
  dns::Message query =
      dns::Message::MakeQuery(MustName("www.example.com"), dns::RRType::kA,
                              /*recursion_desired=*/true);
  query.id = 0x1234;
  query.edns = dns::Edns{.udp_payload_size = 1232};
  WriteFile(dir / "query_edns.bin", query.Encode());
  WriteFile(dir / "response_mixed.bin", SampleResponse().Encode());

  dns::Message soa;
  soa.id = 7;
  soa.qr = true;
  soa.rcode = dns::Rcode::kNxDomain;
  soa.questions.push_back(
      {MustName("nope.example.com"), dns::RRType::kAAAA, dns::RRClass::kIN});
  soa.authorities.push_back(
      {MustName("example.com"), dns::RRType::kSOA, dns::RRClass::kIN, 900,
       dns::SoaRdata{MustName("ns1.example.com"),
                     MustName("hostmaster.example.com"), 2026080901, 7200,
                     3600, 1209600, 900}});
  WriteFile(dir / "nxdomain_soa.bin", soa.Encode());

  // Minimized reproducer: header counts promising far more records than
  // the 12-byte message could hold (the pre-guard decoder looped 4x65535
  // times over an empty body).
  Bytes counts = {0x00, 0x01, 0x00, 0x00, 0xff, 0xff,
                  0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  WriteFile(dir / "repro_oversized_counts.bin", counts);
}

void WriteZoneCorpus(const std::filesystem::path& dir) {
  // Hand-written master-file seeds (text format has no binary encoder).
  WriteFile(dir / "basic.zone",
            "$ORIGIN example.com.\n"
            "$TTL 300\n"
            "@ IN SOA ns1 hostmaster ( 2026080901 7200 3600\n"
            "    1209600 900 ) ; parenthesized continuation\n"
            "@ 86400 IN NS ns1\n"
            "ns1 IN A 192.0.2.53\n"
            "www IN CNAME host\n"
            "host IN A 192.0.2.7\n"
            "host IN AAAA 2001:db8::7\n"
            "@ IN MX 10 mail\n"
            "@ IN TXT \"v=spf1 -all\" \"second \\\"string\\\"\"\n"
            "_sip._tcp IN SRV 10 60 5060 host\n");
  WriteFile(dir / "generic.zone",
            "$ORIGIN example.com.\n"
            "@ IN SOA ns1 root 1 2 3 4 5\n"
            "odd IN TYPE999 \\# 4 deadbeef\n");
  // Minimized reproducers for the tokenizer/directive fixes: each must
  // parse-error (the old code silently mis-tokenized or truncated).
  WriteFile(dir / "repro_trailing_backslash.zone",
            "$ORIGIN example.com.\n@ IN SOA ns1 root 1 2 3 4 5\n"
            "www IN A 192.0.2.1\\\n");
  WriteFile(dir / "repro_unterminated_quote.zone",
            "$ORIGIN example.com.\n@ IN SOA ns1 root 1 2 3 4 5\n"
            "t IN TXT \"no closing quote\n");
  WriteFile(dir / "repro_quote_eol_backslash.zone",
            "$ORIGIN example.com.\n@ IN SOA ns1 root 1 2 3 4 5\n"
            "t IN TXT \"dangling\\\n");
  WriteFile(dir / "repro_ttl_overflow.zone",
            "$TTL 4294967296\n$ORIGIN example.com.\n"
            "@ IN SOA ns1 root 1 2 3 4 5\n");
  WriteFile(dir / "repro_bad_directive.zone",
            "$GENERATE 1-10 host$ A 192.0.2.$\n");
  // Owner label "$" must serialize escaped; bare "$." reparsed as a
  // directive (fuzz_zone round-trip oracle violation, fixed in Name).
  WriteFile(dir / "repro_dollar_owner.zone", "$ IN CNAME mp\n");
}

void WriteFramingCorpus(const std::filesystem::path& dir) {
  Bytes query = dns::Message::MakeQuery(MustName("a.example.com"),
                                        dns::RRType::kA, true)
                    .Encode();
  Bytes response = SampleResponse().Encode();
  Bytes framed_query = std::move(dns::FrameMessage(query)).value();
  Bytes framed_response = std::move(dns::FrameMessage(response)).value();

  WriteFile(dir / "two_messages.bin",
            Seeded(0x07, {framed_query, framed_response}));
  Bytes partial(framed_response.begin(),
                framed_response.end() - static_cast<ptrdiff_t>(5));
  WriteFile(dir / "partial_tail.bin", Seeded(0x2a, {framed_query, partial}));
  // Minimized reproducer: zero-length frame after a valid message; the
  // assembler must fail, stay poisoned, and never re-deliver the first
  // message.
  WriteFile(dir / "repro_zero_length_frame.bin",
            Seeded(0x01, {framed_query, Bytes{0x00, 0x00}, framed_query}));
}

void WriteDistribCorpus(const std::filesystem::path& dir) {
  distrib::HelloFrame hello;
  hello.agent_id = 3;
  hello.server =
      Endpoint{std::move(IpAddress::Parse("127.0.0.1")).value(), 5353};

  distrib::ChunkFrame chunk;
  chunk.seq = 1;
  trace::QueryRecord record;
  record.timestamp = 1'000'000;
  record.src = std::move(IpAddress::Parse("198.51.100.9")).value();
  record.src_port = 40000;
  record.dst = std::move(IpAddress::Parse("192.0.2.53")).value();
  record.id = 77;
  record.qname = MustName("www.example.com");
  record.qtype = dns::RRType::kAAAA;
  record.edns = true;
  record.udp_payload_size = 1232;
  chunk.records.push_back(record);
  record.protocol = trace::Protocol::kTcp;
  record.qname = MustName("tcp.example.com");
  chunk.records.push_back(record);

  stats::MetricsSnapshot snapshot;
  snapshot.taken_at = 42;
  snapshot.counters.emplace_back("replay.sent", 100);
  snapshot.gauges.emplace_back("replay.inflight", -3);
  stats::HistogramSnapshot hist;
  hist.count = 2;
  hist.sum = 30;
  hist.max = 20;
  hist.buckets.assign(stats::LogHistogram::kNumBuckets, 0);
  hist.buckets[5] = 2;
  snapshot.histograms.emplace_back("replay.latency", hist);

  WriteFile(dir / "session.bin",
            Seeded(0x11, {distrib::EncodeHello(hello),
                          distrib::EncodeHelloAck({}),
                          distrib::EncodeClockPing({}),
                          distrib::EncodeStart({}),
                          distrib::EncodeChunk(chunk),
                          distrib::EncodeChunkAck({}),
                          distrib::EncodeInputDone({}),
                          distrib::EncodeStats(snapshot),
                          distrib::EncodeBye()}));
  WriteFile(dir / "error_frame.bin",
            Seeded(0x09, {distrib::EncodeError({.message = "agent failed"})}));
  // Minimized reproducer: an 8-byte CHUNK body claiming 2^20 records — the
  // pre-fix decoder reserved the full count before reading a single one.
  Bytes huge_count = {0x00, 0x00, 0x00, 0x09, 0x06, 0x00, 0x00, 0x00,
                      0x00, 0x00, 0x10, 0x00, 0x00};
  WriteFile(dir / "repro_chunk_count.bin", Seeded(0x03, {huge_count}));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 1;
  }
  std::filesystem::path root(argv[1]);
  for (const char* sub : {"wire", "zone", "framing", "distrib"}) {
    std::filesystem::create_directories(root / sub);
  }
  WriteWireCorpus(root / "wire");
  WriteZoneCorpus(root / "zone");
  WriteFramingCorpus(root / "framing");
  WriteDistribCorpus(root / "distrib");
  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
