// Standalone driver for the fuzz harnesses when the toolchain has no
// libFuzzer (plain GCC + ASan). Speaks enough of the libFuzzer CLI that
// verify.sh can invoke either interchangeably:
//
//   fuzz_wire corpus_dir [more dirs/files] -runs=20000 -max_len=4096
//
// It replays every corpus file through LLVMFuzzerTestOneInput, then runs a
// bounded, fully deterministic mutation loop seeded from the corpus
// (xorshift64 with a fixed seed — every CI run explores the same inputs, so
// a failure here is reproducible by rerunning the same command). This is a
// regression harness, not a coverage-guided explorer; use a clang build of
// the same targets for real fuzzing campaigns.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

uint64_t g_rng = 0x9e3779b97f4a7c15ull;  // fixed seed: runs are reproducible

uint64_t NextRand() {
  g_rng ^= g_rng << 13;
  g_rng ^= g_rng >> 7;
  g_rng ^= g_rng << 17;
  return g_rng;
}

std::vector<Input> g_corpus;
Input g_current;
std::string g_artifact = "crash-standalone";

// Mirror libFuzzer: dump the input that killed us so it can be minimized
// and landed as a regression corpus entry.
void DumpArtifact(int sig) {
  std::FILE* out = std::fopen(g_artifact.c_str(), "wb");
  if (out != nullptr) {
    std::fwrite(g_current.data(), 1, g_current.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "artifact written to %s (%zu bytes)\n",
                 g_artifact.c_str(), g_current.size());
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int RunOne(const Input& input) {
  g_current = input;
  return LLVMFuzzerTestOneInput(input.data(), input.size());
}

void LoadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read corpus file %s\n", path.c_str());
    std::exit(1);
  }
  Input bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  g_corpus.push_back(std::move(bytes));
}

void LoadPath(const char* arg) {
  std::filesystem::path path(arg);
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    // Sort for determinism: directory iteration order is unspecified.
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) LoadFile(file);
  } else if (std::filesystem::is_regular_file(path, ec)) {
    LoadFile(path);
  } else {
    std::fprintf(stderr, "corpus path %s does not exist\n", arg);
    std::exit(1);
  }
}

void Mutate(Input& input, size_t max_len) {
  switch (NextRand() % 6) {
    case 0:  // flip one bit
      if (!input.empty()) {
        input[NextRand() % input.size()] ^= 1u << (NextRand() % 8);
      }
      break;
    case 1:  // overwrite one byte
      if (!input.empty()) {
        input[NextRand() % input.size()] =
            static_cast<uint8_t>(NextRand());
      }
      break;
    case 2:  // truncate
      if (!input.empty()) input.resize(NextRand() % input.size());
      break;
    case 3:  // append random bytes
      for (size_t n = NextRand() % 8 + 1; n > 0 && input.size() < max_len;
           --n) {
        input.push_back(static_cast<uint8_t>(NextRand()));
      }
      break;
    case 4:  // insert a byte
      if (input.size() < max_len) {
        input.insert(input.begin() +
                         static_cast<ptrdiff_t>(
                             input.empty() ? 0 : NextRand() % input.size()),
                     static_cast<uint8_t>(NextRand()));
      }
      break;
    case 5:  // splice a window from another corpus entry
      if (!g_corpus.empty()) {
        const Input& other = g_corpus[NextRand() % g_corpus.size()];
        if (!other.empty() && !input.empty()) {
          size_t src = NextRand() % other.size();
          size_t dst = NextRand() % input.size();
          size_t len = std::min({other.size() - src, input.size() - dst,
                                 NextRand() % 32 + 1});
          std::memcpy(input.data() + dst, other.data() + src, len);
        }
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 0;
  size_t max_len = 4096;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "-runs=", 6) == 0) {
      runs = std::atol(argv[i] + 6);
    } else if (std::strncmp(argv[i], "-max_len=", 9) == 0) {
      max_len = static_cast<size_t>(std::atol(argv[i] + 9));
    } else if (std::strncmp(argv[i], "-artifact_prefix=", 17) == 0) {
      g_artifact = std::string(argv[i] + 17) + "crash-standalone";
    } else if (argv[i][0] == '-') {
      // Ignore other libFuzzer flags so shared invocations keep working.
    } else {
      paths.push_back(argv[i]);
    }
  }
  for (const char* path : paths) LoadPath(path);
  std::signal(SIGABRT, DumpArtifact);

  for (const Input& input : g_corpus) {
    RunOne(input);
  }
  std::fprintf(stderr, "replayed %zu corpus inputs\n", g_corpus.size());

  Input scratch;
  for (long i = 0; i < runs; ++i) {
    if (g_corpus.empty()) {
      scratch.clear();
    } else {
      scratch = g_corpus[NextRand() % g_corpus.size()];
    }
    for (size_t m = NextRand() % 4 + 1; m > 0; --m) Mutate(scratch, max_len);
    if (scratch.size() > max_len) scratch.resize(max_len);
    RunOne(scratch);
  }
  if (runs > 0) std::fprintf(stderr, "#%ld DONE\n", runs);
  return 0;
}
