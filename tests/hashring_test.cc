// Consistent-hash sticky assignment (replay/hashring.h): balance,
// determinism, and — the property the distributed controller relies on —
// stability of surviving assignments when the node set changes at connect
// time.
#include "replay/hashring.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "replay/sticky.h"

namespace ldp::replay {
namespace {

std::vector<IpAddress> MakeSources(size_t n) {
  std::vector<IpAddress> sources;
  sources.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sources.push_back(IpAddress(0x0a000000u + static_cast<uint32_t>(i * 7)));
  }
  return sources;
}

TEST(HashRingTest, CoversAllNodesRoughlyEvenly) {
  HashRing ring(64, /*seed=*/42);
  for (uint32_t node = 0; node < 4; ++node) ring.AddNode(node);

  std::map<uint32_t, size_t> counts;
  auto sources = MakeSources(8000);
  for (IpAddress src : sources) {
    auto node = ring.NodeFor(src);
    ASSERT_TRUE(node.has_value());
    ++counts[*node];
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) {
    // Perfect balance is 2000; consistent hashing with 64 vnodes lands
    // well within a factor of two.
    EXPECT_GT(count, 1000u) << "node " << node;
    EXPECT_LT(count, 4000u) << "node " << node;
  }
}

TEST(HashRingTest, DeterministicAcrossInstances) {
  HashRing a(64, 7), b(64, 7);
  for (uint32_t node = 0; node < 5; ++node) {
    a.AddNode(node);
    b.AddNode(node);
  }
  for (IpAddress src : MakeSources(2000)) {
    EXPECT_EQ(a.NodeFor(src), b.NodeFor(src));
  }
}

TEST(HashRingTest, EmptyRingHasNoOwner) {
  HashRing ring(64, 1);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.NodeFor(IpAddress(1, 2, 3, 4)).has_value());
}

// The connect-time-failure regression test: when one agent fails to
// connect and is removed before the run starts, every source that was NOT
// assigned to the dead agent keeps its assignment, and only the dead
// agent's sources are redistributed.
TEST(HashRingTest, StableUnderConnectTimeNodeRemoval) {
  constexpr uint32_t kDead = 3;
  HashRing full(64, 99);
  for (uint32_t node = 0; node < 4; ++node) full.AddNode(node);

  HashRing degraded(64, 99);
  for (uint32_t node = 0; node < 4; ++node) degraded.AddNode(node);
  degraded.RemoveNode(kDead);

  auto sources = MakeSources(6000);
  size_t moved = 0, on_dead = 0;
  for (IpAddress src : sources) {
    uint32_t before = *full.NodeFor(src);
    uint32_t after = *degraded.NodeFor(src);
    if (before == kDead) {
      ++on_dead;
      EXPECT_NE(after, kDead);
    } else {
      EXPECT_EQ(after, before) << "survivor's client moved: " << src.value();
      if (after != before) ++moved;
    }
  }
  EXPECT_EQ(moved, 0u);
  // Sanity: the dead node actually owned a meaningful share.
  EXPECT_GT(on_dead, 500u);

  // Building the degraded ring from scratch (what the controller actually
  // does after dropping a failed connect) gives the same assignments as
  // remove-from-full.
  HashRing rebuilt(64, 99);
  for (uint32_t node = 0; node < 4; ++node) {
    if (node != kDead) rebuilt.AddNode(node);
  }
  for (IpAddress src : sources) {
    EXPECT_EQ(rebuilt.NodeFor(src), degraded.NodeFor(src));
  }
}

TEST(HashRingTest, AdditionOnlyMovesSourcesToTheNewNode) {
  HashRing small(64, 5), grown(64, 5);
  for (uint32_t node = 0; node < 3; ++node) {
    small.AddNode(node);
    grown.AddNode(node);
  }
  grown.AddNode(3);
  size_t moved_to_new = 0;
  for (IpAddress src : MakeSources(6000)) {
    uint32_t before = *small.NodeFor(src);
    uint32_t after = *grown.NodeFor(src);
    if (before != after) {
      EXPECT_EQ(after, 3u);
      ++moved_to_new;
    }
  }
  // The new node takes roughly a quarter of the keyspace.
  EXPECT_GT(moved_to_new, 600u);
  EXPECT_LT(moved_to_new, 3000u);
}

TEST(StickyAssignTest, MemoizesFirstChoice) {
  std::unordered_map<IpAddress, size_t> table;
  size_t calls = 0;
  auto picker = [&calls](IpAddress) { return calls++; };
  IpAddress a(10, 0, 0, 1), b(10, 0, 0, 2);
  EXPECT_EQ(StickyAssign(table, a, picker), 0u);
  EXPECT_EQ(StickyAssign(table, b, picker), 1u);
  // Repeats hit the memo, never the picker.
  EXPECT_EQ(StickyAssign(table, a, picker), 0u);
  EXPECT_EQ(StickyAssign(table, b, picker), 1u);
  EXPECT_EQ(calls, 2u);
}

TEST(StickyAssignTest, StickyAssignerStillSticky) {
  StickyAssigner assigner(4, 123);
  auto sources = MakeSources(500);
  std::vector<size_t> first;
  first.reserve(sources.size());
  for (IpAddress src : sources) first.push_back(assigner.Assign(src));
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(assigner.Assign(sources[i]), first[i]);
  }
  size_t total = 0;
  for (size_t count : assigner.source_counts()) {
    EXPECT_GT(count, 0u);
    total += count;
  }
  EXPECT_EQ(total, assigner.known_sources());
}

}  // namespace
}  // namespace ldp::replay
