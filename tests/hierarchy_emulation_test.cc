// End-to-end validation of the paper's core technique (§2.4): a single
// meta-DNS-server with split-horizon views plus two address-rewriting
// proxies must be indistinguishable — same answers, same query sequence —
// from a fully distributed hierarchy with one server per nameserver
// address. Also demonstrates the failure mode the technique exists to fix:
// one server holding all zones *without* views short-circuits the
// hierarchy.
#include <gtest/gtest.h>

#include "proxy/proxy.h"
#include "resolver/resolver.h"
#include "server/sim_server.h"
#include "workload/hierarchy.h"

namespace ldp {
namespace {

struct Answer {
  dns::Rcode rcode;
  std::vector<dns::ResourceRecord> answers;
  uint64_t upstream_queries;
};

workload::Hierarchy MakeHierarchy() {
  workload::HierarchyConfig config;
  config.n_tlds = 4;
  config.n_slds_per_tld = 3;
  return workload::BuildHierarchy(config);
}

// Baseline: the "real Internet" — every nameserver address is its own node.
class DistributedWorld {
 public:
  explicit DistributedWorld(const workload::Hierarchy& hierarchy)
      : net_(sim_) {
    net_.SetDefaultOneWayDelay(Millis(1));
    for (const auto& [address, origin] : hierarchy.address_to_zone) {
      zone::ZoneSet set;
      for (const auto& zone : hierarchy.AllZones()) {
        if (zone->origin() == origin) {
          EXPECT_TRUE(set.AddZone(zone).ok());
          break;
        }
      }
      servers_.push_back(
          server::MakeAuthoritativeNode(net_, address, std::move(set)));
      EXPECT_NE(servers_.back(), nullptr);
    }
    resolver::ResolverConfig config;
    config.address = IpAddress(10, 0, 0, 2);
    config.root_hints = hierarchy.nameservers.at(dns::Name::Root());
    resolver_ = std::make_unique<resolver::SimResolver>(net_, config);
    EXPECT_TRUE(resolver_->Start().ok());
  }

  Answer Resolve(const dns::Name& name, dns::RRType type) {
    uint64_t before = resolver_->stats().upstream_queries;
    std::optional<dns::Message> result;
    resolver_->Resolve(name, type, [&](const dns::Message& response) {
      result = response;
    });
    sim_.Run();
    EXPECT_TRUE(result.has_value());
    return Answer{result->rcode, result->answers,
                  resolver_->stats().upstream_queries - before};
  }

 private:
  sim::Simulator sim_;
  sim::SimNetwork net_;
  std::vector<std::unique_ptr<server::SimDnsServer>> servers_;
  std::unique_ptr<resolver::SimResolver> resolver_;
};

// The LDplayer testbed: one meta-DNS-server + proxies.
class EmulatedWorld {
 public:
  EmulatedWorld(const workload::Hierarchy& hierarchy, bool use_views,
                bool use_proxies)
      : net_(sim_) {
    net_.SetDefaultOneWayDelay(Millis(1));

    zone::ViewTable views;
    if (use_views) {
      // One view per zone, matched by that zone's public NS addresses —
      // after the recursive proxy rewrite, the query source *is* the OQDA.
      for (const auto& zone : hierarchy.AllZones()) {
        zone::ZoneSet set;
        EXPECT_TRUE(set.AddZone(zone).ok());
        EXPECT_TRUE(views
                        .AddView(zone->origin().ToString(),
                                 hierarchy.nameservers.at(zone->origin()),
                                 std::move(set))
                        .ok());
      }
    } else {
      // The naive setup the paper warns about: all zones, one view.
      zone::ZoneSet set;
      for (const auto& zone : hierarchy.AllZones()) {
        EXPECT_TRUE(set.AddZone(zone).ok());
      }
      views.SetDefaultView(std::move(set));
    }

    auto engine =
        std::make_shared<server::AuthServerEngine>(std::move(views));
    server::SimDnsServer::Config config;
    config.address = meta_addr_;
    meta_server_ =
        std::make_unique<server::SimDnsServer>(net_, engine, config);
    EXPECT_TRUE(meta_server_->Start().ok());

    resolver::ResolverConfig rconfig;
    rconfig.address = resolver_addr_;
    rconfig.root_hints = hierarchy.nameservers.at(dns::Name::Root());
    if (!use_proxies) {
      // Without the proxy redirect the hierarchy addresses are dead; point
      // the resolver straight at the meta server instead (the other naive
      // topology: "just use it as a forwarder target").
      rconfig.root_hints = {meta_addr_};
    }
    resolver_ = std::make_unique<resolver::SimResolver>(net_, rconfig);
    EXPECT_TRUE(resolver_->Start().ok());

    if (use_proxies) {
      recursive_proxy_ = std::make_unique<proxy::RecursiveProxy>(
          net_, resolver_addr_, meta_addr_);
      authoritative_proxy_ = std::make_unique<proxy::AuthoritativeProxy>(
          net_, meta_addr_, resolver_addr_);
    }
  }

  Answer Resolve(const dns::Name& name, dns::RRType type) {
    uint64_t before = resolver_->stats().upstream_queries;
    std::optional<dns::Message> result;
    resolver_->Resolve(name, type, [&](const dns::Message& response) {
      result = response;
    });
    sim_.Run();
    EXPECT_TRUE(result.has_value());
    return Answer{result.has_value() ? result->rcode : dns::Rcode::kServFail,
                  result.has_value() ? result->answers
                                     : std::vector<dns::ResourceRecord>{},
                  resolver_->stats().upstream_queries - before};
  }

  uint64_t proxy_rewrites() const {
    return (recursive_proxy_ != nullptr
                ? recursive_proxy_->stats().rewritten.load()
                : 0) +
           (authoritative_proxy_ != nullptr
                ? authoritative_proxy_->stats().rewritten.load()
                : 0);
  }

 private:
  sim::Simulator sim_;
  sim::SimNetwork net_;
  IpAddress meta_addr_{10, 0, 0, 50};
  IpAddress resolver_addr_{10, 0, 0, 2};
  std::unique_ptr<server::SimDnsServer> meta_server_;
  std::unique_ptr<resolver::SimResolver> resolver_;
  std::unique_ptr<proxy::RecursiveProxy> recursive_proxy_;
  std::unique_ptr<proxy::AuthoritativeProxy> authoritative_proxy_;
};

TEST(HierarchyEmulation, MetaServerMatchesDistributedHierarchy) {
  auto hierarchy = MakeHierarchy();
  DistributedWorld real(hierarchy);
  EmulatedWorld emulated(hierarchy, /*use_views=*/true, /*use_proxies=*/true);

  // Positive, NXDOMAIN, and NODATA queries all answer identically, with the
  // same number of upstream round trips (same cache-fill behaviour).
  std::vector<std::pair<dns::Name, dns::RRType>> probes;
  probes.emplace_back(hierarchy.hostnames[0], dns::RRType::kA);
  probes.emplace_back(hierarchy.hostnames[1], dns::RRType::kA);
  probes.emplace_back(hierarchy.hostnames[0], dns::RRType::kTXT);
  probes.emplace_back(*dns::Name::Parse("missing.com"), dns::RRType::kA);
  probes.emplace_back(*dns::Name::Parse("nosuchtld-xyz"), dns::RRType::kA);

  for (const auto& [name, type] : probes) {
    Answer from_real = real.Resolve(name, type);
    Answer from_emulated = emulated.Resolve(name, type);
    EXPECT_EQ(from_real.rcode, from_emulated.rcode) << name.ToString();
    EXPECT_EQ(from_real.answers, from_emulated.answers) << name.ToString();
    EXPECT_EQ(from_real.upstream_queries, from_emulated.upstream_queries)
        << name.ToString();
  }
  EXPECT_GT(emulated.proxy_rewrites(), 0u);
}

TEST(HierarchyEmulation, ColdCacheWalkIsThreeLevels) {
  auto hierarchy = MakeHierarchy();
  EmulatedWorld emulated(hierarchy, true, true);
  Answer answer = emulated.Resolve(hierarchy.hostnames[0], dns::RRType::kA);
  EXPECT_EQ(answer.rcode, dns::Rcode::kNoError);
  ASSERT_FALSE(answer.answers.empty());
  // root referral + TLD referral + SLD answer: the emulated hierarchy must
  // NOT collapse into one round trip.
  EXPECT_EQ(answer.upstream_queries, 3u);
}

TEST(HierarchyEmulation, NaiveSingleServerShortCircuitsHierarchy) {
  // The paper's motivating failure: all zones on one server without views.
  // The deepest zone answers directly — one query, no referrals — which is
  // exactly the distortion LDplayer's views + proxies eliminate.
  auto hierarchy = MakeHierarchy();
  EmulatedWorld naive(hierarchy, /*use_views=*/false, /*use_proxies=*/false);
  Answer answer = naive.Resolve(hierarchy.hostnames[0], dns::RRType::kA);
  EXPECT_EQ(answer.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(answer.upstream_queries, 1u);  // hierarchy collapsed!
}

TEST(HierarchyEmulation, WarmCacheBehaviourPreserved) {
  auto hierarchy = MakeHierarchy();
  DistributedWorld real(hierarchy);
  EmulatedWorld emulated(hierarchy, true, true);

  // Two hostnames in the same SLD zone: the second resolve should cost
  // exactly one upstream query in both worlds.
  dns::Name first = hierarchy.hostnames[0];
  dns::Name second = hierarchy.hostnames[1];
  real.Resolve(first, dns::RRType::kA);
  emulated.Resolve(first, dns::RRType::kA);
  Answer real_second = real.Resolve(second, dns::RRType::kA);
  Answer emulated_second = emulated.Resolve(second, dns::RRType::kA);
  EXPECT_EQ(real_second.upstream_queries, 1u);
  EXPECT_EQ(emulated_second.upstream_queries, 1u);
  EXPECT_EQ(real_second.answers, emulated_second.answers);
}

}  // namespace
}  // namespace ldp
