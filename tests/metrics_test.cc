// Live-metrics layer: log-bucket math, registry merging, JSONL snapshot
// rows, and the lock-free contract (snapshot while writers record).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stats/metrics.h"
#include "stats/snapshot_io.h"
#include "stats/summary.h"

namespace ldp::stats {
namespace {

TEST(LogHistogram, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 2 * LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::IndexFor(v), v);
    EXPECT_EQ(LogHistogram::BucketLowerBound(v), v);
  }
}

TEST(LogHistogram, BucketMathRoundTrips) {
  std::vector<uint64_t> values = {0,    1,       31,      32,     33,
                                  47,   48,      63,      64,     100,
                                  1000, 4096,    65535,   1000000,
                                  (1ull << 40) + 12345,   UINT64_MAX};
  for (uint64_t v : values) {
    size_t index = LogHistogram::IndexFor(v);
    ASSERT_LT(index, LogHistogram::kNumBuckets) << "value " << v;
    EXPECT_LE(LogHistogram::BucketLowerBound(index), v) << "value " << v;
    if (index + 1 < LogHistogram::kNumBuckets) {
      EXPECT_GT(LogHistogram::BucketLowerBound(index + 1), v)
          << "value " << v;
    }
  }
  // Strictly increasing lower bounds: the buckets partition the range.
  uint64_t prev = LogHistogram::BucketLowerBound(0);
  for (size_t i = 1; i < LogHistogram::kNumBuckets; ++i) {
    uint64_t lower = LogHistogram::BucketLowerBound(i);
    EXPECT_GT(lower, prev) << "index " << i;
    prev = lower;
  }
}

TEST(LogHistogram, RecordTracksCountSumMax) {
  LogHistogram hist;
  hist.Record(10);
  hist.Record(100);
  hist.Record(1000);
  EXPECT_EQ(hist.count(), 3u);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1110u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 10.0);  // exact below 32
  EXPECT_LE(snap.Quantile(1.0), 1000.0);       // clamped to observed max
}

TEST(LogHistogram, QuantilesTrackExactSummary) {
  // The acceptance budget: bucketed percentiles within two 6.25%-wide
  // log-buckets of the exact sorted quantiles (~13% relative).
  LogHistogram hist;
  Summary exact;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    auto v = static_cast<uint64_t>(std::exp(rng.NextDouble(4.0, 18.0)));
    hist.Record(v);
    exact.Add(static_cast<double>(v));
  }
  exact.Finalize();
  HistogramSnapshot snap = hist.Snapshot();
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    double approx = snap.Quantile(q);
    double truth = exact.Quantile(q);
    EXPECT_NEAR(approx, truth, truth * 0.14) << "q=" << q;
  }
}

TEST(HistogramSnapshot, MergeSumsAndKeepsMax) {
  LogHistogram a;
  LogHistogram b;
  a.Record(5);
  a.Record(7);
  b.Record(1000);
  HistogramSnapshot snap = a.Snapshot();
  snap.Merge(b.Snapshot());
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1012u);
  EXPECT_EQ(snap.max, 1000u);
}

TEST(Registry, SameNameInstancesMergeAtSnapshot) {
  MetricsRegistry registry;
  Counter* c1 = registry.AddCounter("x.count");
  Counter* c2 = registry.AddCounter("x.count");
  Gauge* g1 = registry.AddGauge("x.depth");
  Gauge* g2 = registry.AddGauge("x.depth");
  LogHistogram* h1 = registry.AddHistogram("x.hist");
  LogHistogram* h2 = registry.AddHistogram("x.hist");
  // The per-shard pattern: distinct instances, merged under one name.
  EXPECT_NE(c1, c2);
  c1->Add(3);
  c2->Add(4);
  g1->Set(10);
  g2->Set(-4);
  h1->Record(8);
  h2->Record(16);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("x.count"), 7u);
  EXPECT_EQ(snap.GaugeValue("x.depth"), 6);
  const HistogramSnapshot* h = snap.Histogram("x.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(snap.CounterValue("absent"), 0u);
  EXPECT_EQ(snap.Histogram("absent"), nullptr);
}

TEST(Registry, PolledFunctionsReadAtSnapshotTime) {
  MetricsRegistry registry;
  uint64_t backing = 0;
  int64_t level = 0;
  registry.AddCounterFn("sub.events", [&backing] { return backing; });
  registry.AddGaugeFn("sub.level", [&level] { return level; });
  registry.AddCounter("sub.events")->Add(2);  // merges with the polled fn
  backing = 41;
  level = -5;
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("sub.events"), 43u);
  EXPECT_EQ(snap.GaugeValue("sub.level"), -5);
  backing = 100;
  EXPECT_EQ(registry.Snapshot().CounterValue("sub.events"), 102u);
}

TEST(Snapshotter, WritesJsonlRowsWithDeltas) {
  MetricsRegistry registry;
  Counter* sent = registry.AddCounter("replay.sent");
  Gauge* inflight = registry.AddGauge("replay.inflight");
  LogHistogram* latency = registry.AddHistogram("replay.latency_ns");
  std::string path = ::testing::TempDir() + "/ldp_metrics_rows.jsonl";
  MetricsSnapshotter::Options opts;
  opts.path = path;
  opts.keep_history = true;
  opts.clock = [] { return static_cast<NanoTime>(123 * kNanosPerMilli); };
  MetricsSnapshotter snapshotter(registry, opts);
  ASSERT_TRUE(snapshotter.Open().ok());

  sent->Add(5);
  inflight->Set(2);
  latency->Record(1000);
  snapshotter.WriteNow();
  sent->Add(3);
  snapshotter.WriteNow();

  EXPECT_EQ(snapshotter.rows_written(), 2u);
  ASSERT_EQ(snapshotter.history().size(), 2u);
  EXPECT_EQ(snapshotter.history().back().CounterValue("replay.sent"), 8u);

  std::ifstream in(path);
  std::string line1;
  std::string line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_NE(line1.find("\"ts_ms\":123"), std::string::npos) << line1;
  EXPECT_NE(line1.find("\"seq\":0"), std::string::npos) << line1;
  EXPECT_NE(line1.find("\"replay.sent\":{\"total\":5,\"delta\":5}"),
            std::string::npos)
      << line1;
  EXPECT_NE(line1.find("\"replay.inflight\":2"), std::string::npos) << line1;
  EXPECT_NE(line1.find("\"replay.latency_ns\":{\"count\":1"),
            std::string::npos)
      << line1;
  EXPECT_NE(line2.find("\"seq\":1"), std::string::npos) << line2;
  EXPECT_NE(line2.find("\"replay.sent\":{\"total\":8,\"delta\":3}"),
            std::string::npos)
      << line2;
}

TEST(Snapshotter, PolledRegressionReportsZeroDelta) {
  // A polled counter whose subsystem resets must not produce a wrapped
  // (huge) delta in the next row.
  MetricsRegistry registry;
  uint64_t backing = 10;
  registry.AddCounterFn("sub.polled", [&backing] { return backing; });
  std::string path = ::testing::TempDir() + "/ldp_metrics_regress.jsonl";
  MetricsSnapshotter::Options opts;
  opts.path = path;
  MetricsSnapshotter snapshotter(registry, opts);
  ASSERT_TRUE(snapshotter.Open().ok());
  snapshotter.WriteNow();
  backing = 4;
  snapshotter.WriteNow();
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"sub.polled\":{\"total\":4,\"delta\":0}"),
            std::string::npos)
      << line;
}

TEST(Snapshotter, EmptyPathKeepsHistoryOnly) {
  MetricsRegistry registry;
  registry.AddCounter("a")->Add(1);
  MetricsSnapshotter::Options opts;
  opts.keep_history = true;
  MetricsSnapshotter snapshotter(registry, opts);
  ASSERT_TRUE(snapshotter.Open().ok());
  const MetricsSnapshot& snap = snapshotter.WriteNow();
  EXPECT_EQ(snap.CounterValue("a"), 1u);
  EXPECT_EQ(snapshotter.history().size(), 1u);
}

TEST(Metrics, ConcurrentRecordWhileSnapshotting) {
  // The lock-free contract: writer threads record through their per-thread
  // instances while another thread snapshots the registry. Intermediate
  // merged counters must be monotone, and after the writers join the final
  // snapshot must be exact. Run under tsan to check the memory-order story.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<Counter*> counters;
  std::vector<LogHistogram*> hists;
  std::vector<Gauge*> gauges;
  for (int i = 0; i < kThreads; ++i) {
    counters.push_back(registry.AddCounter("work.items"));
    hists.push_back(registry.AddHistogram("work.latency"));
    gauges.push_back(registry.AddGauge("work.inflight"));
  }
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (uint64_t n = 0; n < kPerThread; ++n) {
        gauges[i]->Add(1);
        counters[i]->Add(1);
        hists[i]->Record(n + 1);
        gauges[i]->Add(-1);
      }
      done.fetch_add(1);
    });
  }
  uint64_t prev = 0;
  while (done.load() < kThreads) {
    MetricsSnapshot snap = registry.Snapshot();
    uint64_t items = snap.CounterValue("work.items");
    EXPECT_GE(items, prev);
    prev = items;
  }
  for (auto& t : threads) t.join();
  MetricsSnapshot last = registry.Snapshot();
  EXPECT_EQ(last.CounterValue("work.items"), kThreads * kPerThread);
  const HistogramSnapshot* h = last.Histogram("work.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kPerThread);
  EXPECT_EQ(h->max, kPerThread);
  EXPECT_EQ(last.GaugeValue("work.inflight"), 0);
}

// --- offline JSONL: parse and multi-stream merge (ldp_trace_stats merge,
// and the distributed controller's merged stream) ---

JsonlRow MakeRow(uint64_t seq, int64_t ts_ms, uint64_t sent_total,
                 uint64_t sent_delta,
                 std::vector<uint64_t> latencies = {}) {
  MetricsRegistry registry;
  auto* hist = registry.AddHistogram("replay.latency_ns");
  for (uint64_t v : latencies) hist->Record(v);
  MetricsSnapshot snapshot = registry.Snapshot();
  snapshot.taken_at = ts_ms * kNanosPerMilli;
  JsonlRow row = RowFromSnapshot(snapshot, nullptr, seq,
                                 /*emit_buckets=*/true);
  row.counters.emplace_back(
      "replay.sent", JsonlRow::CounterCell{sent_total, sent_delta});
  return row;
}

TEST(SnapshotIo, ParseRoundTripsFormattedRow) {
  MetricsRegistry registry;
  registry.AddCounter("replay.sent")->Add(7);
  registry.AddGauge("replay.inflight")->Set(-2);
  auto* hist = registry.AddHistogram("replay.latency_ns");
  for (uint64_t v : {90u, 1500u, 1u << 18}) hist->Record(v);
  MetricsSnapshot snapshot = registry.Snapshot();
  snapshot.taken_at = 4200 * kNanosPerMilli;

  JsonlRow row = RowFromSnapshot(snapshot, nullptr, 3, /*emit_buckets=*/true);
  auto parsed = ParseJsonlRow(FormatJsonlRow(row));
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed->ts_ms, 4200);
  EXPECT_EQ(parsed->seq, 3u);
  ASSERT_EQ(parsed->counters.size(), 1u);
  EXPECT_EQ(parsed->counters[0].second.total, 7u);
  EXPECT_EQ(parsed->counters[0].second.delta, 7u);
  ASSERT_EQ(parsed->gauges.size(), 1u);
  EXPECT_EQ(parsed->gauges[0].second, -2);
  ASSERT_EQ(parsed->histograms.size(), 1u);
  const auto& cell = parsed->histograms[0].second;
  EXPECT_EQ(cell.count, 3u);
  EXPECT_EQ(cell.max, 1u << 18);
  EXPECT_EQ(cell.buckets, row.histograms[0].second.buckets);

  // And the re-rendered line is byte-identical: one writer, one format.
  EXPECT_EQ(FormatJsonlRow(*parsed), FormatJsonlRow(row));
}

TEST(SnapshotIo, ParseRejectsUnknownShapes) {
  EXPECT_FALSE(ParseJsonlRow("not json").ok());
  // One writer, one format: a field the writer never emits is a wrong
  // file, not an extension point.
  EXPECT_FALSE(ParseJsonlRow("{\"ts_ms\":1,\"bogus\":2}").ok());
}

TEST(SnapshotIo, MergeSumsRowByRowAndCarriesShortStreamsForward) {
  // Agent A writes 3 rows; agent B finishes early with 2. Rows are
  // cumulative, so B's last row must persist under A's tail.
  std::vector<std::vector<JsonlRow>> streams{
      {MakeRow(0, 100, 10, 10, {1000}),
       MakeRow(1, 200, 25, 15, {1000, 2000}),
       MakeRow(2, 300, 40, 15, {1000, 2000, 4000})},
      {MakeRow(0, 110, 5, 5), MakeRow(1, 210, 9, 4)},
  };
  auto merged = MergeJsonlStreams(streams);
  ASSERT_EQ(merged.size(), 3u);

  auto sent_total = [](const JsonlRow& row) -> uint64_t {
    for (const auto& [name, cell] : row.counters) {
      if (name == "replay.sent") return cell.total;
    }
    return 0;
  };
  EXPECT_EQ(sent_total(merged[0]), 15u);   // 10 + 5
  EXPECT_EQ(sent_total(merged[1]), 34u);   // 25 + 9
  EXPECT_EQ(sent_total(merged[2]), 49u);   // 40 + 9 (B carried forward)
  // Deltas recomputed from consecutive merged totals, not summed inputs.
  EXPECT_EQ(merged[1].counters[0].second.delta, 34u - 15u);
  EXPECT_EQ(merged[2].counters[0].second.delta, 49u - 34u);
  // Output is renumbered and timestamped at the latest contributor.
  EXPECT_EQ(merged[2].seq, 2u);
  EXPECT_EQ(merged[0].ts_ms, 110);
  EXPECT_EQ(merged[2].ts_ms, 300);
  // Histograms merged exactly through sparse buckets.
  ASSERT_EQ(merged[2].histograms.size(), 1u);
  EXPECT_EQ(merged[2].histograms[0].second.count, 3u);
  EXPECT_EQ(merged[2].histograms[0].second.max, 4000u);
}

}  // namespace
}  // namespace ldp::stats
