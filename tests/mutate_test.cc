#include <gtest/gtest.h>

#include "mutate/mutate.h"
#include "workload/traces.h"

namespace ldp::mutate {
namespace {

std::vector<trace::QueryRecord> SampleTrace(size_t n) {
  workload::FixedIntervalConfig config;
  config.interarrival = Millis(1);
  config.duration = Millis(static_cast<int64_t>(n));
  return workload::MakeFixedIntervalTrace(config);
}

TEST(Mutate, ForceProtocol) {
  auto records = SampleTrace(100);
  MutationPipeline pipeline;
  pipeline.Add(ForceProtocol(trace::Protocol::kTls));
  pipeline.Apply(records);
  ASSERT_EQ(records.size(), 100u);
  for (const auto& r : records) {
    EXPECT_EQ(r.protocol, trace::Protocol::kTls);
  }
}

TEST(Mutate, SetDnssecOkAll) {
  auto records = SampleTrace(200);
  MutationPipeline pipeline;
  pipeline.Add(SetDnssecOk(1.0));
  pipeline.Apply(records);
  for (const auto& r : records) {
    EXPECT_TRUE(r.do_bit);
    EXPECT_TRUE(r.edns);
    EXPECT_GT(r.udp_payload_size, 0);
  }
}

TEST(Mutate, SetDnssecOkFractionIsDeterministic) {
  auto a = SampleTrace(2000);
  auto b = SampleTrace(2000);
  MutationPipeline pipeline;
  pipeline.Add(SetDnssecOk(0.723));
  pipeline.Apply(a);
  pipeline.Apply(b);
  EXPECT_EQ(a, b);
  size_t with_do = 0;
  for (const auto& r : a) with_do += r.do_bit ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(with_do) / a.size(), 0.723, 0.03);
}

TEST(Mutate, PrependUniqueLabelMakesNamesUnique) {
  auto records = SampleTrace(50);
  for (auto& r : records) r.qname = *dns::Name::Parse("same.example.com");
  MutationPipeline pipeline;
  pipeline.Add(PrependUniqueLabel("r"));
  pipeline.Apply(records);
  std::set<std::string> names;
  for (const auto& r : records) names.insert(r.qname.CanonicalKey());
  EXPECT_EQ(names.size(), records.size());
  EXPECT_TRUE(records[0].qname.ToString().starts_with("r0."));
}

TEST(Mutate, TimeScaleAndShift) {
  auto records = SampleTrace(10);
  MutationPipeline pipeline;
  pipeline.Add(TimeScale(2.0)).Add(TimeShift(Seconds(1)));
  pipeline.Apply(records);
  EXPECT_EQ(records[0].timestamp, Seconds(1));
  EXPECT_EQ(records[1].timestamp, Seconds(1) + Millis(2));
}

TEST(Mutate, SampleKeepsApproximateFraction) {
  auto records = SampleTrace(5000);
  MutationPipeline pipeline;
  pipeline.Add(Sample(0.25));
  pipeline.Apply(records);
  EXPECT_NEAR(static_cast<double>(records.size()) / 5000.0, 0.25, 0.03);
}

TEST(Mutate, FilterComposesWithRewrite) {
  auto records = SampleTrace(100);
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].protocol =
        i % 2 == 0 ? trace::Protocol::kUdp : trace::Protocol::kTcp;
  }
  MutationPipeline pipeline;
  pipeline.Add(KeepOnlyProtocol(trace::Protocol::kTcp))
      .Add(SetDnssecOk(1.0));
  pipeline.Apply(records);
  EXPECT_EQ(records.size(), 50u);
  for (const auto& r : records) {
    EXPECT_EQ(r.protocol, trace::Protocol::kTcp);
    EXPECT_TRUE(r.do_bit);
  }
}

TEST(Mutate, RebaseToZero) {
  auto records = SampleTrace(5);
  MutationPipeline shift;
  shift.Add(TimeShift(Seconds(100)));
  shift.Apply(records);
  MutationPipeline rebase;
  rebase.Add(RebaseToZero(records.front().timestamp));
  rebase.Apply(records);
  EXPECT_EQ(records.front().timestamp, 0);
}

TEST(Mutate, StreamingApplyOne) {
  MutationPipeline pipeline;
  pipeline.Add(KeepOnlyProtocol(trace::Protocol::kUdp))
      .Add(ForceProtocol(trace::Protocol::kTcp));
  trace::QueryRecord udp;
  udp.protocol = trace::Protocol::kUdp;
  EXPECT_TRUE(pipeline.ApplyOne(udp, 0));
  EXPECT_EQ(udp.protocol, trace::Protocol::kTcp);
  trace::QueryRecord tls;
  tls.protocol = trace::Protocol::kTls;
  EXPECT_FALSE(pipeline.ApplyOne(tls, 1));
}

}  // namespace
}  // namespace ldp::mutate
