#include <gtest/gtest.h>

#include "dns/framing.h"
#include "net/event_loop.h"
#include "net/sockets.h"

namespace ldp::net {
namespace {

TEST(EventLoop, TimersFireInOrder) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  std::vector<int> order;
  NanoTime start = MonotonicNow();
  (*loop)->ScheduleAt(start + Millis(4), [&] { order.push_back(2); });
  (*loop)->ScheduleAt(start + Millis(1), [&] { order.push_back(1); });
  (*loop)->ScheduleAt(start + Millis(8), [&] {
    order.push_back(3);
    (*loop)->Stop();
  });
  (*loop)->Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, TimerAccuracySubMillisecond) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  NanoTime fired = 0;
  NanoTime deadline = MonotonicNow() + Millis(5);
  (*loop)->ScheduleAt(deadline, [&] {
    fired = MonotonicNow();
    (*loop)->Stop();
  });
  (*loop)->Run();
  ASSERT_GT(fired, 0);
  EXPECT_GE(fired, deadline);
  // Generous bound (loaded CI machines); typical error is < 100 µs with
  // epoll_pwait2.
  EXPECT_LT(fired - deadline, Millis(5));
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  bool fired = false;
  TimerHandle handle =
      (*loop)->ScheduleAfter(Millis(1), [&] { fired = true; });
  handle.Cancel();
  (*loop)->ScheduleAfter(Millis(3), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, ZeroDelayRearmDoesNotStarveIo) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  // A handler that re-arms itself with a zero delay must not monopolize
  // the timer pass: the loop has to keep polling epoll between passes, or
  // socket reads starve for as long as the re-arm chain continues (the
  // fast-mode replay pump works exactly like this).
  int pumps = 0;
  bool received = false;
  std::function<void()> pump = [&] {
    ++pumps;
    if (!received && pumps < 100000) (*loop)->ScheduleAfter(0, pump);
  };
  (*loop)->ScheduleAfter(0, pump);

  std::unique_ptr<UdpSocket> receiver;
  auto receiver_result = UdpSocket::Bind(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const uint8_t>, Endpoint) {
        received = true;
        (*loop)->Stop();
      });
  ASSERT_TRUE(receiver_result.ok());
  receiver = std::move(*receiver_result);

  auto sender_result =
      UdpSocket::Bind(**loop, Endpoint{IpAddress::Loopback(), 0},
                      [](std::span<const uint8_t>, Endpoint) {});
  ASSERT_TRUE(sender_result.ok());
  auto sender = std::move(*sender_result);
  Bytes ping{1};
  ASSERT_TRUE(sender->SendTo(ping, receiver->local()).ok());

  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_TRUE(received) << "IO starved by a zero-delay re-arm chain";
  EXPECT_GT(pumps, 0);
}

TEST(UdpSockets, EchoOverLoopback) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  // Server: echoes back.
  std::unique_ptr<UdpSocket> server;
  auto server_result = UdpSocket::Bind(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&server](std::span<const uint8_t> payload, Endpoint from) {
        auto status = server->SendTo(payload, from);
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(server_result.ok()) << server_result.error().ToString();
  server = std::move(*server_result);
  ASSERT_NE(server->local().port, 0);

  Bytes received;
  auto client_result = UdpSocket::Bind(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const uint8_t> payload, Endpoint) {
        received.assign(payload.begin(), payload.end());
        (*loop)->Stop();
      });
  ASSERT_TRUE(client_result.ok());
  auto client = std::move(*client_result);

  Bytes message{1, 2, 3, 4};
  ASSERT_TRUE(client->SendTo(message, server->local()).ok());
  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });  // safety
  (*loop)->Run();
  EXPECT_EQ(received, message);
}

TEST(TcpSockets, ConnectSendReceiveClose) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  std::vector<std::unique_ptr<TcpConnection>> server_conns;
  auto listener_result = TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<TcpConnection> conn) {
        TcpConnection* raw = conn.get();
        server_conns.push_back(std::move(conn));
        auto status = TcpListener::AdoptHandlers(
            *raw,
            [raw](std::span<const uint8_t> data) {
              // Echo.
              auto send_ok = raw->Send(data);
              EXPECT_TRUE(send_ok.ok());
            },
            [](Status) {});
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(listener_result.ok()) << listener_result.error().ToString();
  auto listener = std::move(*listener_result);

  Bytes received;
  bool connected = false;
  std::unique_ptr<TcpConnection> client;
  auto client_result = TcpConnection::Connect(
      **loop, listener->local(),
      [&](Status status) {
        ASSERT_TRUE(status.ok());
        connected = true;
        Bytes hello{'h', 'i'};
        auto send_ok = client->Send(hello);
        EXPECT_TRUE(send_ok.ok());
      },
      [&](std::span<const uint8_t> data) {
        received.insert(received.end(), data.begin(), data.end());
        if (received.size() >= 2) (*loop)->Stop();
      },
      [](Status) {});
  ASSERT_TRUE(client_result.ok());
  client = std::move(*client_result);

  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(received, (Bytes{'h', 'i'}));
}

TEST(TcpSockets, LargeTransferSurvivesBuffering) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  std::vector<std::unique_ptr<TcpConnection>> server_conns;
  size_t server_received = 0;
  const size_t kTotal = 4 * 1024 * 1024;
  auto listener_result = TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<TcpConnection> conn) {
        TcpConnection* raw = conn.get();
        server_conns.push_back(std::move(conn));
        auto status = TcpListener::AdoptHandlers(
            *raw,
            [&](std::span<const uint8_t> data) {
              server_received += data.size();
              if (server_received >= kTotal) (*loop)->Stop();
            },
            [](Status) {});
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(listener_result.ok());
  auto listener = std::move(*listener_result);

  std::unique_ptr<TcpConnection> client;
  Bytes chunk(64 * 1024, 0x5a);
  auto client_result = TcpConnection::Connect(
      **loop, listener->local(),
      [&](Status status) {
        ASSERT_TRUE(status.ok());
        for (size_t sent = 0; sent < kTotal; sent += chunk.size()) {
          auto send_ok = client->Send(chunk);
          ASSERT_TRUE(send_ok.ok());
        }
      },
      [](std::span<const uint8_t>) {}, [](Status) {});
  ASSERT_TRUE(client_result.ok());
  client = std::move(*client_result);

  (*loop)->ScheduleAfter(Seconds(10), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_EQ(server_received, kTotal);
}

TEST(TcpSockets, ConnectRefusedSurfaces) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  bool failed = false;
  std::unique_ptr<TcpConnection> client;
  // Port 1 on loopback: almost certainly closed.
  auto result = TcpConnection::Connect(
      **loop, Endpoint{IpAddress::Loopback(), 1},
      [&](Status status) {
        failed = !status.ok();
        (*loop)->Stop();
      },
      [](std::span<const uint8_t>) {}, [](Status) {});
  ASSERT_TRUE(result.ok());
  client = std::move(*result);
  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_TRUE(failed);
}

TEST(TcpSockets, CloseReasonSurfacesCleanEof) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  // Accept and immediately drop the connection: the unique_ptr dies on
  // return, the kernel sends FIN, and the client's close handler must see
  // a clean (ok) reason rather than an error.
  auto listener_result = TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [](std::unique_ptr<TcpConnection>) {});
  ASSERT_TRUE(listener_result.ok());
  auto listener = std::move(*listener_result);

  bool close_fired = false;
  Status close_reason = Status::Ok();
  std::unique_ptr<TcpConnection> client;
  auto client_result = TcpConnection::Connect(
      **loop, listener->local(),
      [](Status status) { ASSERT_TRUE(status.ok()); },
      [](std::span<const uint8_t>) {},
      [&](Status reason) {
        close_fired = true;
        close_reason = reason;
        (*loop)->Stop();
      });
  ASSERT_TRUE(client_result.ok());
  client = std::move(*client_result);

  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_TRUE(close_fired);
  EXPECT_TRUE(close_reason.ok())
      << (close_reason.ok() ? "" : close_reason.error().ToString());
}

TEST(TcpSockets, WriteWatermarksSignalPauseAndResume) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  // The accepted connection is parked unread at first, so the client's
  // user-space send queue grows past the high watermark; adopting a
  // consuming handler later drains it back below the low watermark.
  std::unique_ptr<TcpConnection> server_conn;
  auto listener_result = TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<TcpConnection> conn) {
        server_conn = std::move(conn);
      });
  ASSERT_TRUE(listener_result.ok());
  auto listener = std::move(*listener_result);

  std::vector<bool> events;  // true = paused, false = resumed
  std::unique_ptr<TcpConnection> client;
  Bytes chunk(64 * 1024, 0xab);
  auto client_result = TcpConnection::Connect(
      **loop, listener->local(),
      [&](Status status) {
        ASSERT_TRUE(status.ok());
        // Send until the high watermark fires (kernel buffers are finite,
        // so this terminates well before the 200-chunk cap).
        for (int i = 0; i < 200 && events.empty(); ++i) {
          ASSERT_TRUE(client->Send(chunk).ok());
        }
        EXPECT_FALSE(events.empty()) << "high watermark never fired";
      },
      [](std::span<const uint8_t>) {}, [](Status) {});
  ASSERT_TRUE(client_result.ok());
  client = std::move(*client_result);
  client->SetWriteWatermarks(128 * 1024, 16 * 1024, [&](bool paused) {
    events.push_back(paused);
    if (!paused) (*loop)->Stop();
  });

  (*loop)->ScheduleAfter(Millis(100), [&] {
    if (server_conn == nullptr) return;
    auto status = TcpListener::AdoptHandlers(
        *server_conn, [](std::span<const uint8_t>) {}, [](Status) {});
    EXPECT_TRUE(status.ok());
  });
  (*loop)->ScheduleAfter(Seconds(5), [&] { (*loop)->Stop(); });
  (*loop)->Run();

  ASSERT_GE(events.size(), 2u);
  EXPECT_TRUE(events[0]);   // paused when the queue crossed high
  EXPECT_FALSE(events[1]);  // resumed once drained to low
}

TEST(TcpSockets, DestroyInsideDataCallbackIsSafe) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  std::vector<std::unique_ptr<TcpConnection>> server_conns;
  auto listener_result = TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<TcpConnection> conn) {
        TcpConnection* raw = conn.get();
        server_conns.push_back(std::move(conn));
        auto status = TcpListener::AdoptHandlers(
            *raw,
            [raw](std::span<const uint8_t> data) {
              auto send_ok = raw->Send(data);
              EXPECT_TRUE(send_ok.ok());
            },
            [](Status) {});
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(listener_result.ok());
  auto listener = std::move(*listener_result);

  // The client destroys itself from inside its own data callback — the
  // pattern a replay querier hits when a reply retires the connection.
  // Must not touch freed memory (ASan-verified in the sanitizer preset).
  bool got_data = false;
  std::unique_ptr<TcpConnection> client;
  auto client_result = TcpConnection::Connect(
      **loop, listener->local(),
      [&](Status status) {
        ASSERT_TRUE(status.ok());
        Bytes ping{'p', 'i', 'n', 'g'};
        ASSERT_TRUE(client->Send(ping).ok());
      },
      [&](std::span<const uint8_t>) {
        got_data = true;
        client.reset();
        (*loop)->ScheduleAfter(Millis(10), [&] { (*loop)->Stop(); });
      },
      [](Status) {});
  ASSERT_TRUE(client_result.ok());
  client = std::move(*client_result);

  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_TRUE(got_data);
  EXPECT_EQ(client, nullptr);
}

TEST(UdpSockets, BatchSendAndBatchReceive) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  // Receiver in batch mode: whole recvmmsg batches per handler call.
  std::vector<Bytes> got;
  size_t handler_calls = 0;
  std::unique_ptr<UdpSocket> receiver;
  auto receiver_result = UdpSocket::BindBatch(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const UdpSocket::RecvItem> batch) {
        ++handler_calls;
        for (const auto& item : batch) {
          got.emplace_back(item.payload.begin(), item.payload.end());
        }
        if (got.size() >= 50) (*loop)->Stop();
      });
  ASSERT_TRUE(receiver_result.ok());
  receiver = std::move(*receiver_result);

  auto sender_result =
      UdpSocket::Bind(**loop, Endpoint{IpAddress::Loopback(), 0},
                      [](std::span<const uint8_t>, Endpoint) {});
  ASSERT_TRUE(sender_result.ok());
  auto sender = std::move(*sender_result);

  // 50 datagrams in one SendBatch: spans two sendmmsg chunks (kBatchSize
  // is 32) and two recvmmsg batches on the way in.
  std::vector<Bytes> payloads;
  for (uint8_t i = 0; i < 50; ++i) payloads.push_back(Bytes{i, i, i});
  std::vector<UdpSendItem> items;
  for (const Bytes& p : payloads) {
    items.push_back(UdpSendItem{p, receiver->local()});
  }
  EXPECT_EQ(sender->SendBatch(items), items.size());

  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });  // safety
  (*loop)->Run();
  ASSERT_EQ(got.size(), payloads.size());
  EXPECT_EQ(got, payloads);  // loopback preserves order
  EXPECT_LT(handler_calls, payloads.size()) << "expected batched delivery";
}

TEST(UdpSockets, ReusePortSharesAnAddress) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  UdpSocket::Options options;
  options.reuse_port = true;
  options.recv_buffer_bytes = 1 << 20;
  auto first =
      UdpSocket::Bind(**loop, Endpoint{IpAddress::Loopback(), 0},
                      [](std::span<const uint8_t>, Endpoint) {}, options);
  ASSERT_TRUE(first.ok());
  Endpoint shared = (*first)->local();

  // Second bind to the same concrete port succeeds only via SO_REUSEPORT.
  auto second = UdpSocket::Bind(
      **loop, shared, [](std::span<const uint8_t>, Endpoint) {}, options);
  EXPECT_TRUE(second.ok()) << (second.ok() ? "" : second.error().ToString());

  // Without the option the same bind must fail.
  auto third = UdpSocket::Bind(**loop, shared,
                               [](std::span<const uint8_t>, Endpoint) {});
  EXPECT_FALSE(third.ok());
}

}  // namespace
}  // namespace ldp::net
