#include <gtest/gtest.h>

#include "dns/framing.h"
#include "net/event_loop.h"
#include "net/sockets.h"

namespace ldp::net {
namespace {

TEST(EventLoop, TimersFireInOrder) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  std::vector<int> order;
  NanoTime start = MonotonicNow();
  (*loop)->ScheduleAt(start + Millis(4), [&] { order.push_back(2); });
  (*loop)->ScheduleAt(start + Millis(1), [&] { order.push_back(1); });
  (*loop)->ScheduleAt(start + Millis(8), [&] {
    order.push_back(3);
    (*loop)->Stop();
  });
  (*loop)->Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, TimerAccuracySubMillisecond) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  NanoTime fired = 0;
  NanoTime deadline = MonotonicNow() + Millis(5);
  (*loop)->ScheduleAt(deadline, [&] {
    fired = MonotonicNow();
    (*loop)->Stop();
  });
  (*loop)->Run();
  ASSERT_GT(fired, 0);
  EXPECT_GE(fired, deadline);
  // Generous bound (loaded CI machines); typical error is < 100 µs with
  // epoll_pwait2.
  EXPECT_LT(fired - deadline, Millis(5));
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  bool fired = false;
  TimerHandle handle =
      (*loop)->ScheduleAfter(Millis(1), [&] { fired = true; });
  handle.Cancel();
  (*loop)->ScheduleAfter(Millis(3), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_FALSE(fired);
}

TEST(UdpSockets, EchoOverLoopback) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  // Server: echoes back.
  std::unique_ptr<UdpSocket> server;
  auto server_result = UdpSocket::Bind(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&server](std::span<const uint8_t> payload, Endpoint from) {
        auto status = server->SendTo(payload, from);
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(server_result.ok()) << server_result.error().ToString();
  server = std::move(*server_result);
  ASSERT_NE(server->local().port, 0);

  Bytes received;
  auto client_result = UdpSocket::Bind(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const uint8_t> payload, Endpoint) {
        received.assign(payload.begin(), payload.end());
        (*loop)->Stop();
      });
  ASSERT_TRUE(client_result.ok());
  auto client = std::move(*client_result);

  Bytes message{1, 2, 3, 4};
  ASSERT_TRUE(client->SendTo(message, server->local()).ok());
  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });  // safety
  (*loop)->Run();
  EXPECT_EQ(received, message);
}

TEST(TcpSockets, ConnectSendReceiveClose) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  std::vector<std::unique_ptr<TcpConnection>> server_conns;
  auto listener_result = TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<TcpConnection> conn) {
        TcpConnection* raw = conn.get();
        server_conns.push_back(std::move(conn));
        auto status = TcpListener::AdoptHandlers(
            *raw,
            [raw](std::span<const uint8_t> data) {
              // Echo.
              auto send_ok = raw->Send(data);
              EXPECT_TRUE(send_ok.ok());
            },
            [] {});
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(listener_result.ok()) << listener_result.error().ToString();
  auto listener = std::move(*listener_result);

  Bytes received;
  bool connected = false;
  std::unique_ptr<TcpConnection> client;
  auto client_result = TcpConnection::Connect(
      **loop, listener->local(),
      [&](Status status) {
        ASSERT_TRUE(status.ok());
        connected = true;
        Bytes hello{'h', 'i'};
        auto send_ok = client->Send(hello);
        EXPECT_TRUE(send_ok.ok());
      },
      [&](std::span<const uint8_t> data) {
        received.insert(received.end(), data.begin(), data.end());
        if (received.size() >= 2) (*loop)->Stop();
      },
      [] {});
  ASSERT_TRUE(client_result.ok());
  client = std::move(*client_result);

  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(received, (Bytes{'h', 'i'}));
}

TEST(TcpSockets, LargeTransferSurvivesBuffering) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  std::vector<std::unique_ptr<TcpConnection>> server_conns;
  size_t server_received = 0;
  const size_t kTotal = 4 * 1024 * 1024;
  auto listener_result = TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<TcpConnection> conn) {
        TcpConnection* raw = conn.get();
        server_conns.push_back(std::move(conn));
        auto status = TcpListener::AdoptHandlers(
            *raw,
            [&](std::span<const uint8_t> data) {
              server_received += data.size();
              if (server_received >= kTotal) (*loop)->Stop();
            },
            [] {});
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(listener_result.ok());
  auto listener = std::move(*listener_result);

  std::unique_ptr<TcpConnection> client;
  Bytes chunk(64 * 1024, 0x5a);
  auto client_result = TcpConnection::Connect(
      **loop, listener->local(),
      [&](Status status) {
        ASSERT_TRUE(status.ok());
        for (size_t sent = 0; sent < kTotal; sent += chunk.size()) {
          auto send_ok = client->Send(chunk);
          ASSERT_TRUE(send_ok.ok());
        }
      },
      [](std::span<const uint8_t>) {}, [] {});
  ASSERT_TRUE(client_result.ok());
  client = std::move(*client_result);

  (*loop)->ScheduleAfter(Seconds(10), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_EQ(server_received, kTotal);
}

TEST(TcpSockets, ConnectRefusedSurfaces) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  bool failed = false;
  std::unique_ptr<TcpConnection> client;
  // Port 1 on loopback: almost certainly closed.
  auto result = TcpConnection::Connect(
      **loop, Endpoint{IpAddress::Loopback(), 1},
      [&](Status status) {
        failed = !status.ok();
        (*loop)->Stop();
      },
      [](std::span<const uint8_t>) {}, [] {});
  ASSERT_TRUE(result.ok());
  client = std::move(*result);
  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });
  (*loop)->Run();
  EXPECT_TRUE(failed);
}

TEST(UdpSockets, BatchSendAndBatchReceive) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  // Receiver in batch mode: whole recvmmsg batches per handler call.
  std::vector<Bytes> got;
  size_t handler_calls = 0;
  std::unique_ptr<UdpSocket> receiver;
  auto receiver_result = UdpSocket::BindBatch(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::span<const UdpSocket::RecvItem> batch) {
        ++handler_calls;
        for (const auto& item : batch) {
          got.emplace_back(item.payload.begin(), item.payload.end());
        }
        if (got.size() >= 50) (*loop)->Stop();
      });
  ASSERT_TRUE(receiver_result.ok());
  receiver = std::move(*receiver_result);

  auto sender_result =
      UdpSocket::Bind(**loop, Endpoint{IpAddress::Loopback(), 0},
                      [](std::span<const uint8_t>, Endpoint) {});
  ASSERT_TRUE(sender_result.ok());
  auto sender = std::move(*sender_result);

  // 50 datagrams in one SendBatch: spans two sendmmsg chunks (kBatchSize
  // is 32) and two recvmmsg batches on the way in.
  std::vector<Bytes> payloads;
  for (uint8_t i = 0; i < 50; ++i) payloads.push_back(Bytes{i, i, i});
  std::vector<UdpSendItem> items;
  for (const Bytes& p : payloads) {
    items.push_back(UdpSendItem{p, receiver->local()});
  }
  EXPECT_EQ(sender->SendBatch(items), items.size());

  (*loop)->ScheduleAfter(Seconds(2), [&] { (*loop)->Stop(); });  // safety
  (*loop)->Run();
  ASSERT_EQ(got.size(), payloads.size());
  EXPECT_EQ(got, payloads);  // loopback preserves order
  EXPECT_LT(handler_calls, payloads.size()) << "expected batched delivery";
}

TEST(UdpSockets, ReusePortSharesAnAddress) {
  auto loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  UdpSocket::Options options;
  options.reuse_port = true;
  options.recv_buffer_bytes = 1 << 20;
  auto first =
      UdpSocket::Bind(**loop, Endpoint{IpAddress::Loopback(), 0},
                      [](std::span<const uint8_t>, Endpoint) {}, options);
  ASSERT_TRUE(first.ok());
  Endpoint shared = (*first)->local();

  // Second bind to the same concrete port succeeds only via SO_REUSEPORT.
  auto second = UdpSocket::Bind(
      **loop, shared, [](std::span<const uint8_t>, Endpoint) {}, options);
  EXPECT_TRUE(second.ok()) << (second.ok() ? "" : second.error().ToString());

  // Without the option the same bind must fail.
  auto third = UdpSocket::Bind(**loop, shared,
                               [](std::span<const uint8_t>, Endpoint) {});
  EXPECT_FALSE(third.ok());
}

}  // namespace
}  // namespace ldp::net
