// Unit tests for the userspace Ethernet/IPv4/UDP codec behind the
// AF_PACKET datapath: checksum rules (including RFC 768's 0x0000→0xFFFF
// substitution and zero-checksum acceptance on rx), Build→Parse round
// trips, and strict rejection of truncated or malformed frames. Pure
// in-memory — these run under the asan/tsan presets with no capabilities.
#include "net/packet_codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/ip.h"

namespace ldp::net {
namespace {

// Byte offsets into an assembled frame (Ethernet + optionless IPv4 + UDP).
constexpr size_t kEtherTypeOff = 12;
constexpr size_t kIpVersionIhlOff = kEthernetHeaderBytes;       // 14
constexpr size_t kIpTotalLenOff = kEthernetHeaderBytes + 2;     // 16
constexpr size_t kIpFragOff = kEthernetHeaderBytes + 6;         // 20
constexpr size_t kIpProtoOff = kEthernetHeaderBytes + 9;        // 23
constexpr size_t kIpChecksumOff = kEthernetHeaderBytes + 10;    // 24
constexpr size_t kIpSrcOff = kEthernetHeaderBytes + 12;         // 26
constexpr size_t kUdpLenOff = kUdpFrameOverhead - 4;            // 38
constexpr size_t kUdpChecksumOff = kUdpFrameOverhead - 2;       // 40

UdpFrameSpec TestSpec() {
  UdpFrameSpec spec;
  spec.src_mac = *MacAddr::Parse("02:00:00:00:00:01");
  spec.dst_mac = *MacAddr::Parse("02:00:00:00:00:02");
  spec.src = Endpoint{*IpAddress::Parse("10.1.2.3"), 5300};
  spec.dst = Endpoint{*IpAddress::Parse("192.0.2.7"), 53};
  return spec;
}

std::vector<uint8_t> BuildFrame(const UdpFrameSpec& spec,
                                std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame(kUdpFrameOverhead + payload.size());
  auto len = BuildUdpFrame(frame, spec, payload);
  EXPECT_TRUE(len.ok()) << len.error().ToString();
  EXPECT_EQ(*len, frame.size());
  return frame;
}

TEST(MacAddrTest, ParseToStringRoundTrip) {
  auto mac = MacAddr::Parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac->bytes, (std::array<uint8_t, 6>{0xaa, 0xbb, 0xcc, 0xdd,
                                                0xee, 0xff}));
  EXPECT_EQ(mac->ToString(), "aa:bb:cc:dd:ee:ff");
  EXPECT_FALSE(mac->IsZero());

  auto zero = MacAddr::Parse("00:00:00:00:00:00");
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->IsZero());
  EXPECT_EQ(MacAddr::Broadcast().ToString(), "ff:ff:ff:ff:ff:ff");
  EXPECT_FALSE(MacAddr::Broadcast().IsZero());
}

TEST(MacAddrTest, ParseUppercaseHex) {
  auto mac = MacAddr::Parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(*mac, *MacAddr::Parse("aa:bb:cc:dd:ee:ff"));
}

TEST(MacAddrTest, RejectsMalformed) {
  EXPECT_FALSE(MacAddr::Parse("").ok());
  EXPECT_FALSE(MacAddr::Parse("aa:bb:cc:dd:ee").ok());
  EXPECT_FALSE(MacAddr::Parse("aa:bb:cc:dd:ee:ff:00").ok());
  EXPECT_FALSE(MacAddr::Parse("aa:bb:cc:dd:ee:fg").ok());
  EXPECT_FALSE(MacAddr::Parse("aabbccddeeff").ok());
  EXPECT_FALSE(MacAddr::Parse("aa:bb:cc:dd:ee:f").ok());
}

TEST(PacketCodecTest, BuildParseRoundTrip) {
  UdpFrameSpec spec = TestSpec();
  const std::vector<uint8_t> payload = {'l', 'd', 'p', 'l', 'a', 'y',
                                        'e', 'r', 0x00, 0x01, 0xff, 0x80};
  auto frame = BuildFrame(spec, payload);

  auto view = ParseUdpFrame(frame);
  ASSERT_TRUE(view.ok()) << view.error().ToString();
  EXPECT_EQ(view->src_mac, spec.src_mac);
  EXPECT_EQ(view->dst_mac, spec.dst_mac);
  EXPECT_EQ(view->src, spec.src);
  EXPECT_EQ(view->dst, spec.dst);
  ASSERT_EQ(view->payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(view->payload.data(), payload.data(),
                        payload.size()),
            0);
}

TEST(PacketCodecTest, OddLengthAndEmptyPayloadsRoundTrip) {
  UdpFrameSpec spec = TestSpec();
  // Odd payload exercises the checksum's trailing-byte padding.
  const std::vector<uint8_t> odd = {0xde, 0xad, 0xbe};
  auto frame = BuildFrame(spec, odd);
  auto view = ParseUdpFrame(frame);
  ASSERT_TRUE(view.ok()) << view.error().ToString();
  EXPECT_EQ(view->payload.size(), odd.size());

  auto empty_frame = BuildFrame(spec, {});
  auto empty_view = ParseUdpFrame(empty_frame);
  ASSERT_TRUE(empty_view.ok()) << empty_view.error().ToString();
  EXPECT_EQ(empty_view->payload.size(), 0u);
}

TEST(PacketCodecTest, StoredChecksumsFoldToZero) {
  // The defining property of a correct RFC 1071 checksum: summing the
  // checksummed region *including* the stored field folds to zero.
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6};
  auto frame = BuildFrame(TestSpec(), payload);
  auto ip_header = std::span<const uint8_t>(frame).subspan(
      kEthernetHeaderBytes, kIpv4MinHeaderBytes);
  EXPECT_EQ(ChecksumFold(ChecksumAccumulate(ip_header, 0)), 0u);
}

TEST(PacketCodecTest, PayloadCorruptionRejected) {
  const std::vector<uint8_t> payload = {10, 20, 30, 40};
  auto frame = BuildFrame(TestSpec(), payload);
  frame[kUdpFrameOverhead + 1] ^= 0x40;
  auto view = ParseUdpFrame(frame);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code(), ErrorCode::kParseError);

  // The same frame passes with verification off (the CSUMNOTREADY path).
  ParseOptions no_verify;
  no_verify.verify_udp_checksum = false;
  EXPECT_TRUE(ParseUdpFrame(frame, no_verify).ok());
}

TEST(PacketCodecTest, ZeroUdpChecksumAccepted) {
  // RFC 768: an all-zero checksum field means "not computed" and must be
  // accepted on receive even with verification enabled.
  const std::vector<uint8_t> payload = {10, 20, 30, 40};
  auto frame = BuildFrame(TestSpec(), payload);
  frame[kUdpChecksumOff] = 0;
  frame[kUdpChecksumOff + 1] = 0;
  auto view = ParseUdpFrame(frame);
  ASSERT_TRUE(view.ok()) << view.error().ToString();
  EXPECT_EQ(view->payload.size(), payload.size());
}

TEST(PacketCodecTest, ComputedZeroChecksumTransmitsAsAllOnes) {
  // Find a 2-byte payload whose one's-complement sum makes the computed
  // checksum zero; UdpChecksum must substitute 0xFFFF (RFC 768), the built
  // frame must carry 0xFFFF on the wire, and the parser must accept it.
  UdpFrameSpec spec = TestSpec();
  std::vector<uint8_t> payload(2);
  bool found = false;
  for (uint32_t w = 0; w <= 0xffff && !found; ++w) {
    payload[0] = static_cast<uint8_t>(w >> 8);
    payload[1] = static_cast<uint8_t>(w & 0xff);
    uint16_t checksum = UdpChecksum(spec.src.addr, spec.dst.addr,
                                    spec.src.port, spec.dst.port, payload);
    ASSERT_NE(checksum, 0u) << "UdpChecksum must never emit 0x0000";
    found = checksum == 0xffff;
  }
  ASSERT_TRUE(found) << "no payload word hits the substitution case";

  auto frame = BuildFrame(spec, payload);
  EXPECT_EQ(frame[kUdpChecksumOff], 0xff);
  EXPECT_EQ(frame[kUdpChecksumOff + 1], 0xff);
  EXPECT_TRUE(ParseUdpFrame(frame).ok());
}

TEST(PacketCodecTest, EveryTruncationRejected) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  auto frame = BuildFrame(TestSpec(), payload);
  for (size_t n = 0; n < frame.size(); ++n) {
    auto view = ParseUdpFrame(std::span<const uint8_t>(frame).first(n));
    EXPECT_FALSE(view.ok()) << "prefix of " << n << " bytes parsed";
  }
}

TEST(PacketCodecTest, TrailingEthernetPaddingIgnored) {
  // Frames below the Ethernet minimum arrive padded; bytes beyond the IP
  // total length must not reach the payload or fail the parse.
  const std::vector<uint8_t> payload = {0xab, 0xcd};
  auto frame = BuildFrame(TestSpec(), payload);
  frame.resize(frame.size() + 18, 0x5a);
  auto view = ParseUdpFrame(frame);
  ASSERT_TRUE(view.ok()) << view.error().ToString();
  EXPECT_EQ(view->payload.size(), payload.size());
}

TEST(PacketCodecTest, NonIpv4EtherTypeRejected) {
  auto frame = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2});
  frame[kEtherTypeOff] = 0x08;
  frame[kEtherTypeOff + 1] = 0x06;  // ARP
  auto view = ParseUdpFrame(frame);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code(), ErrorCode::kUnsupported);
}

TEST(PacketCodecTest, BadIpVersionAndIhlRejected) {
  auto frame = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2});
  const uint8_t orig = frame[kIpVersionIhlOff];
  frame[kIpVersionIhlOff] = 0x65;  // IPv6 version nibble
  EXPECT_FALSE(ParseUdpFrame(frame).ok());
  frame[kIpVersionIhlOff] = 0x44;  // IHL=4 < minimum header
  EXPECT_FALSE(ParseUdpFrame(frame).ok());
  frame[kIpVersionIhlOff] = orig;
  EXPECT_TRUE(ParseUdpFrame(frame).ok());
}

TEST(PacketCodecTest, FragmentsRejected) {
  // MF set (first fragment): the frame is syntactically fine but cannot be
  // served from without reassembly, so it is refused as unsupported. The
  // fragment check runs before IP checksum verification, so no fix-up.
  auto frame = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2});
  frame[kIpFragOff] = 0x20;  // MF, offset 0
  auto view = ParseUdpFrame(frame);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code(), ErrorCode::kUnsupported);
}

TEST(PacketCodecTest, NonUdpProtocolRejected) {
  auto frame = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2});
  frame[kIpProtoOff] = 6;  // TCP
  auto view = ParseUdpFrame(frame);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code(), ErrorCode::kUnsupported);
}

TEST(PacketCodecTest, IpHeaderCorruptionRejected) {
  // Flipping an address bit breaks the IP header checksum, which is
  // verified before anything derived from the addresses.
  auto frame = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2});
  frame[kIpSrcOff] ^= 0x01;
  auto view = ParseUdpFrame(frame);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code(), ErrorCode::kParseError);

  // So does corrupting the stored IP checksum itself.
  auto frame2 = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2});
  frame2[kIpChecksumOff] ^= 0x01;
  EXPECT_FALSE(ParseUdpFrame(frame2).ok());
}

TEST(PacketCodecTest, UdpLengthMismatchRejected) {
  // A UDP length that disagrees with the IP total length is refused even
  // when everything else lines up.
  auto frame = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2, 3, 4});
  frame[kUdpLenOff + 1] += 2;
  EXPECT_FALSE(ParseUdpFrame(frame).ok());
}

TEST(PacketCodecTest, TotalLengthBeyondFrameRejected) {
  auto frame = BuildFrame(TestSpec(), std::vector<uint8_t>{1, 2, 3, 4});
  frame[kIpTotalLenOff + 1] += 8;  // claims more bytes than captured
  auto view = ParseUdpFrame(frame);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code(), ErrorCode::kTruncated);
}

TEST(PacketCodecTest, IpOptionsParse) {
  // The builder never emits options, but received frames may carry them:
  // hand-widen a built frame to IHL=6 with a zeroed option word, recompute
  // the IP checksum, and the parse must still find the right payload.
  const std::vector<uint8_t> payload = {0x11, 0x22, 0x33};
  auto frame = BuildFrame(TestSpec(), payload);
  std::vector<uint8_t> widened(frame.begin(),
                               frame.begin() + kEthernetHeaderBytes +
                                   kIpv4MinHeaderBytes);
  widened.insert(widened.end(), {0, 0, 0, 0});  // one option word (EOOL)
  widened.insert(widened.end(),
                 frame.begin() + kEthernetHeaderBytes + kIpv4MinHeaderBytes,
                 frame.end());
  widened[kIpVersionIhlOff] = 0x46;  // IHL = 6
  const uint16_t total = static_cast<uint16_t>(widened.size() -
                                               kEthernetHeaderBytes);
  widened[kIpTotalLenOff] = static_cast<uint8_t>(total >> 8);
  widened[kIpTotalLenOff + 1] = static_cast<uint8_t>(total & 0xff);
  widened[kIpChecksumOff] = 0;
  widened[kIpChecksumOff + 1] = 0;
  auto ip_header = std::span<const uint8_t>(widened).subspan(
      kEthernetHeaderBytes, 24);
  const uint16_t ip_sum = ChecksumFold(ChecksumAccumulate(ip_header, 0));
  widened[kIpChecksumOff] = static_cast<uint8_t>(ip_sum >> 8);
  widened[kIpChecksumOff + 1] = static_cast<uint8_t>(ip_sum & 0xff);

  auto view = ParseUdpFrame(widened);
  ASSERT_TRUE(view.ok()) << view.error().ToString();
  ASSERT_EQ(view->payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(view->payload.data(), payload.data(),
                        payload.size()),
            0);
}

TEST(PacketCodecTest, BuildRejectsOversizePayload) {
  // 65508 payload bytes push the IPv4 total length past 0xFFFF.
  std::vector<uint8_t> payload(0x10000 - kIpv4MinHeaderBytes -
                               kUdpHeaderBytes + 1);
  std::vector<uint8_t> out(payload.size() + kUdpFrameOverhead);
  auto len = BuildUdpFrame(out, TestSpec(), payload);
  ASSERT_FALSE(len.ok());
  EXPECT_EQ(len.error().code(), ErrorCode::kOutOfRange);
}

TEST(PacketCodecTest, BuildRejectsShortOutputBuffer) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4};
  std::vector<uint8_t> out(kUdpFrameOverhead + payload.size() - 1);
  auto len = BuildUdpFrame(out, TestSpec(), payload);
  ASSERT_FALSE(len.ok());
  EXPECT_EQ(len.error().code(), ErrorCode::kResourceExhausted);
}

}  // namespace
}  // namespace ldp::net
