// Parameterized property suites sweeping configuration grids:
//  * master-file serialize/parse is a fixpoint for arbitrary generated
//    hierarchies (signed and unsigned),
//  * the simulated TCP lifecycle balances its connection accounting for
//    every idle-timeout setting,
//  * binary/text trace codecs are inverses on every workload model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"
#include "server/sim_server.h"
#include "trace/binary.h"
#include "trace/pcap.h"
#include "trace/text.h"
#include "workload/hierarchy.h"
#include "workload/traces.h"
#include "zone/dnssec.h"
#include "zone/masterfile.h"

namespace ldp {
namespace {

// --- Master-file fixpoint over hierarchy shapes ---

struct ZoneCase {
  size_t tlds;
  size_t slds;
  bool sign;
};

class MasterFileFixpoint : public ::testing::TestWithParam<ZoneCase> {};

TEST_P(MasterFileFixpoint, SerializeParseSerialize) {
  const ZoneCase& c = GetParam();
  workload::HierarchyConfig config;
  config.n_tlds = c.tlds;
  config.n_slds_per_tld = c.slds;
  config.sign_root = c.sign;
  auto hierarchy = workload::BuildHierarchy(config);

  for (const auto& zone : hierarchy.AllZones()) {
    std::string first = zone::SerializeZone(*zone);
    auto reparsed = zone::ParseMasterFile(first, zone::MasterFileOptions{});
    ASSERT_TRUE(reparsed.ok())
        << zone->origin().ToString() << ": " << reparsed.error().ToString();
    EXPECT_EQ(reparsed->record_count(), zone->record_count());
    // Fixpoint: a second round produces byte-identical text.
    std::string second = zone::SerializeZone(*reparsed);
    EXPECT_EQ(first, second) << zone->origin().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MasterFileFixpoint,
    ::testing::Values(ZoneCase{1, 0, false}, ZoneCase{3, 2, false},
                      ZoneCase{3, 2, true}, ZoneCase{10, 0, true},
                      ZoneCase{5, 8, false}));

// --- TCP accounting balance across timeout grid ---

class TcpAccounting : public ::testing::TestWithParam<int> {};

TEST_P(TcpAccounting, GaugesReturnToZeroAfterDrain) {
  int timeout_s = GetParam();
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  net.SetDefaultOneWayDelay(Millis(2));

  auto zone = zone::ParseMasterFile(
      "$ORIGIN t.\n@ 60 IN SOA ns.t. a.t. 1 2 3 4 5\n@ IN NS ns.t.\n"
      "* IN A 1.2.3.4\n",
      zone::MasterFileOptions{});
  ASSERT_TRUE(zone.ok());
  zone::ZoneSet set;
  ASSERT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));
  server::SimDnsServer::Config config;
  config.address = IpAddress(10, 0, 0, 1);
  config.tcp_idle_timeout = Seconds(timeout_s);
  server::SimDnsServer server(net, engine, config);
  ASSERT_TRUE(server.Start().ok());

  workload::FixedIntervalConfig tconfig;
  tconfig.interarrival = Millis(50);
  tconfig.duration = Seconds(10);
  tconfig.n_clients = 17;
  tconfig.server = config.address;
  auto records = workload::MakeFixedIntervalTrace(tconfig);
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  pipeline.Apply(records);

  replay::SimReplayConfig rconfig;
  rconfig.server = Endpoint{config.address, 53};
  rconfig.gauge_interval = 0;
  replay::SimReplayEngine replayer(net, rconfig, &server.meters());
  replayer.Load(records);
  auto report = replayer.Finish();

  // Every query answered; after the full drain (idle close + TIME_WAIT
  // expiry) all gauges balance to zero.
  EXPECT_EQ(report.responses, records.size());
  EXPECT_EQ(server.meters().established_connections(), 0u)
      << "timeout " << timeout_s;
  EXPECT_EQ(server.meters().time_wait_connections(), 0u)
      << "timeout " << timeout_s;
  // Conservation: every fresh connection was eventually closed exactly
  // once (fresh == sources when the trace is shorter than the timeout).
  EXPECT_GE(report.fresh_connections, 17u);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, TcpAccounting,
                         ::testing::Values(1, 5, 12, 20, 40));

// --- Trace codec inverses over workload models ---

class TraceCodecInverse : public ::testing::TestWithParam<int> {};

TEST_P(TraceCodecInverse, BinaryAndTextRoundTrip) {
  std::vector<trace::QueryRecord> records;
  switch (GetParam()) {
    case 0: {
      workload::BRootConfig config;
      config.median_rate_qps = 200;
      config.duration = Seconds(5);
      records = workload::MakeBRootTrace(config);
      break;
    }
    case 1: {
      workload::FixedIntervalConfig config;
      config.interarrival = Millis(3);
      config.duration = Seconds(3);
      records = workload::MakeFixedIntervalTrace(config);
      break;
    }
    default: {
      workload::HierarchyConfig hconfig;
      hconfig.n_tlds = 2;
      hconfig.n_slds_per_tld = 2;
      auto hierarchy = workload::BuildHierarchy(hconfig);
      workload::RecConfig config;
      config.n_records = 500;
      records = workload::MakeRecursiveTrace(config, hierarchy);
      break;
    }
  }
  ASSERT_FALSE(records.empty());

  auto binary = trace::DecodeBinaryTrace(trace::EncodeBinaryTrace(records));
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(*binary, records);

  std::ostringstream text;
  ASSERT_TRUE(trace::WriteTextTrace(records, text).ok());
  std::istringstream in(text.str());
  auto parsed = trace::ReadTextTrace(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(*parsed, records);
}

INSTANTIATE_TEST_SUITE_P(Models, TraceCodecInverse, ::testing::Values(0, 1, 2));


// --- Decoder robustness: arbitrary bytes never crash, only fail cleanly ---

class DecoderRobustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderRobustness, RandomBuffersNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage(rng.NextBelow(300));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.NextU64());
    auto message = dns::Message::Decode(garbage);
    (void)message;  // ok() or clean error; must not crash or hang
    auto packets = trace::ReadPcap(garbage);
    (void)packets;
    auto records = trace::DecodeBinaryTrace(garbage);
    (void)records;
  }
}

TEST_P(DecoderRobustness, BitFlippedMessagesNeverCrash) {
  // Start from a valid message and flip random bits: decoders must reject
  // or accept without crashing, even with corrupted compression pointers.
  Rng rng(GetParam() ^ 0xf11b);
  dns::Message msg;
  msg.id = 7;
  msg.qr = true;
  msg.questions.push_back(dns::Question{*dns::Name::Parse("www.example.com"),
                                        dns::RRType::kA, dns::RRClass::kIN});
  msg.answers.push_back(dns::ResourceRecord{
      *dns::Name::Parse("www.example.com"), dns::RRType::kCNAME,
      dns::RRClass::kIN, 60,
      dns::CnameRdata{*dns::Name::Parse("target.example.com")}});
  Bytes base = msg.Encode();
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes mutated = base;
    int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      size_t index = rng.NextBelow(mutated.size());
      mutated[index] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    auto decoded = dns::Message::Decode(mutated);
    if (decoded.ok()) {
      // Re-encoding whatever was decoded must also not crash.
      Bytes reencoded = decoded->Encode();
      (void)reencoded;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderRobustness,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ldp
