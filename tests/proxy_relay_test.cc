// HierarchyProxy (src/proxy/relay.h): the real-socket address-rewriting
// relay must deliver the paper's §2.4 contract — the meta server sees the
// OQDA as source (its split-horizon view selector) with the client's port
// preserved, and the reply returns from the address the client queried.
// Plus the NAT-table bounds: LRU eviction under pressure, idle expiry on
// the wheel, and late replies for drained flows dropped-and-counted.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "dns/framing.h"
#include "dns/message.h"
#include "proxy/relay.h"
#include "replay/realtime.h"
#include "server/sharded_server.h"
#include "stats/metrics.h"
#include "workload/traces.h"
#include "zone/masterfile.h"

namespace ldp::proxy {
namespace {

// Two emulated nameserver addresses with disjoint split-horizon views:
// queries arriving (after rewrite) from kNsA must see zone a.test, from
// kNsB zone b.test. Both are 127/8 so they bind without interface config.
const IpAddress kNsA(127, 51, 0, 10);
const IpAddress kNsB(127, 52, 0, 10);

zone::ZoneSet OneZoneSet(const std::string& origin,
                         const std::string& answer_v4) {
  auto zone = zone::ParseMasterFile(
      "$ORIGIN " + origin + "\n" +
          "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
          "@ IN NS ns1\n"
          "ns1 IN A 192.0.2.53\n"
          "* IN A " + answer_v4 + "\n",
      zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok()) << origin;
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  return set;
}

std::shared_ptr<const zone::ViewTable> SplitHorizonViews() {
  zone::ViewTable views;
  EXPECT_TRUE(
      views.AddView("a", {kNsA}, OneZoneSet("a.test.", "192.0.2.1")).ok());
  EXPECT_TRUE(
      views.AddView("b", {kNsB}, OneZoneSet("b.test.", "192.0.2.2")).ok());
  return std::make_shared<const zone::ViewTable>(std::move(views));
}

sockaddr_in SockAddr(IpAddress addr, uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(addr.value());
  return sa;
}

// Blocking UDP client pinned to a specific local port, so the test can
// assert the rewrite preserved it end to end.
class UdpClient {
 public:
  explicit UdpClient(uint16_t local_port = 0) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{.tv_sec = 5, .tv_usec = 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in local = SockAddr(IpAddress::Loopback(), local_port);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&local),
                     sizeof(local)),
              0);
  }
  ~UdpClient() { ::close(fd_); }

  uint16_t port() const {
    sockaddr_in local{};
    socklen_t len = sizeof(local);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&local), &len);
    return ntohs(local.sin_port);
  }

  void SendTo(Endpoint dst, const Bytes& wire) {
    sockaddr_in sa = SockAddr(dst.addr, dst.port);
    EXPECT_EQ(::sendto(fd_, wire.data(), wire.size(), 0,
                       reinterpret_cast<sockaddr*>(&sa), sizeof(sa)),
              static_cast<ssize_t>(wire.size()));
  }

  // Returns the payload and fills `from` with the responder's address.
  Bytes Recv(IpAddress* from = nullptr, int timeout_ms = 5000) {
    timeval tv{.tv_sec = timeout_ms / 1000,
               .tv_usec = (timeout_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    uint8_t buf[65536];
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    ssize_t got = ::recvfrom(fd_, buf, sizeof(buf), 0,
                             reinterpret_cast<sockaddr*>(&sa), &len);
    if (got <= 0) return {};
    if (from != nullptr) *from = IpAddress(ntohl(sa.sin_addr.s_addr));
    return Bytes(buf, buf + got);
  }

 private:
  int fd_ = -1;
};

Bytes MakeQueryWire(const std::string& qname, uint16_t id) {
  auto query = dns::Message::MakeQuery(*dns::Name::Parse(qname),
                                       dns::RRType::kA, false);
  query.id = id;
  return query.Encode();
}

// A stand-in meta server the test controls: records each query's rewritten
// source endpoint and replies only when told to, so eviction and expiry
// can be staged deterministically.
class ManualMeta {
 public:
  ManualMeta() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{.tv_sec = 5, .tv_usec = 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in local = SockAddr(IpAddress::Loopback(), 0);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&local),
                     sizeof(local)),
              0);
  }
  ~ManualMeta() { ::close(fd_); }

  Endpoint endpoint() const {
    sockaddr_in local{};
    socklen_t len = sizeof(local);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&local), &len);
    return Endpoint{IpAddress::Loopback(), ntohs(local.sin_port)};
  }

  struct Seen {
    Endpoint from;  // the relay's rewritten source: (OQDA, client port)
    Bytes wire;
  };

  std::optional<Seen> Read(int timeout_ms = 5000) {
    timeval tv{.tv_sec = timeout_ms / 1000,
               .tv_usec = (timeout_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    uint8_t buf[65536];
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    ssize_t got = ::recvfrom(fd_, buf, sizeof(buf), 0,
                             reinterpret_cast<sockaddr*>(&sa), &len);
    if (got <= 0) return std::nullopt;
    return Seen{Endpoint{IpAddress(ntohl(sa.sin_addr.s_addr)),
                         ntohs(sa.sin_port)},
                Bytes(buf, buf + got)};
  }

  void ReplyTo(const Seen& seen) {
    auto query = dns::Message::Decode(seen.wire);
    ASSERT_TRUE(query.ok());
    auto reply = *query;
    reply.qr = true;
    Bytes wire = reply.Encode();
    sockaddr_in sa = SockAddr(seen.from.addr, seen.from.port);
    EXPECT_EQ(::sendto(fd_, wire.data(), wire.size(), 0,
                       reinterpret_cast<sockaddr*>(&sa), sizeof(sa)),
              static_cast<ssize_t>(wire.size()));
  }

 private:
  int fd_ = -1;
};

bool WaitFor(const std::function<bool()>& done, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

TEST(HierarchyProxyTest, UdpRewriteRoundTripPreservesPortAndView) {
  server::ShardedDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};
  sconfig.n_shards = 1;
  sconfig.serve_tcp = false;
  auto meta = server::ShardedDnsServer::Start(SplitHorizonViews(), sconfig);
  ASSERT_TRUE(meta.ok()) << meta.error().ToString();

  stats::MetricsRegistry registry;
  RelayConfig config;
  config.addresses = {kNsA, kNsB};
  config.meta_server = (*meta)->endpoint();
  config.splice_tcp = false;
  config.metrics = &registry;
  auto relay = HierarchyProxy::Start(config);
  ASSERT_TRUE(relay.ok()) << relay.error().ToString();
  uint16_t service_port = (*relay)->port();
  ASSERT_NE(service_port, 0);

  // Same client socket queries both emulated addresses: each query must
  // match its address's view, and each reply must come back *from* the
  // address that was queried.
  UdpClient client;
  struct Case {
    IpAddress ns;
    std::string qname;
    IpAddress want;
  };
  for (const Case& c : {Case{kNsA, "www.a.test", IpAddress(192, 0, 2, 1)},
                        Case{kNsB, "www.b.test", IpAddress(192, 0, 2, 2)}}) {
    client.SendTo(Endpoint{c.ns, service_port}, MakeQueryWire(c.qname, 42));
    IpAddress from(0u);
    Bytes wire = client.Recv(&from);
    ASSERT_FALSE(wire.empty()) << c.qname;
    EXPECT_EQ(from, c.ns) << "reply must come from the queried address";
    auto reply = dns::Message::Decode(wire);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->rcode, dns::Rcode::kNoError) << c.qname;
    ASSERT_EQ(reply->answers.size(), 1u) << c.qname;
  }

  // The client can hold the reply before the shard thread has bumped its
  // counters (the datagram is queued mid-SendBatch, the Add comes after);
  // wait for the ledger to settle instead of racing it.
  WaitFor([&] { return (*relay)->TotalStats().responses_out >= 2; });
  RelayStats stats = (*relay)->TotalStats();
  EXPECT_EQ(stats.queries_in, 2u);
  EXPECT_EQ(stats.responses_out, 2u);
  // Port-preserving: both relay sockets bound (OQDA, client_port) without
  // falling back to an ephemeral port — the meta server saw the client's
  // own port, which is what view-keyed per-client state depends on.
  EXPECT_EQ(stats.port_fallbacks, 0u);
  EXPECT_EQ(stats.flows_created, 2u);  // one per (client, OQDA) pair

  // The same totals must be visible through the registry under proxy.*.
  stats::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("proxy.queries_in"), 2u);
  EXPECT_EQ(snapshot.CounterValue("proxy.responses_out"), 2u);
  EXPECT_EQ(snapshot.GaugeValue("proxy.flow_table"), stats.active_flows);
  EXPECT_NE(snapshot.Histogram("proxy.rewrite_ns"), nullptr);

  (*relay)->Stop();
  (*meta)->Stop();
  // Polled counters must survive Stop() for the final snapshot.
  EXPECT_EQ(registry.Snapshot().CounterValue("proxy.queries_in"), 2u);
}

TEST(HierarchyProxyTest, TcpSpliceRewriteRoundTrip) {
  server::ShardedDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};
  sconfig.n_shards = 1;
  sconfig.serve_tcp = true;
  auto meta = server::ShardedDnsServer::Start(SplitHorizonViews(), sconfig);
  ASSERT_TRUE(meta.ok()) << meta.error().ToString();

  RelayConfig config;
  config.addresses = {kNsA, kNsB};
  config.meta_server = (*meta)->endpoint();
  auto relay = HierarchyProxy::Start(config);
  ASSERT_TRUE(relay.ok()) << relay.error().ToString();

  // TCP to the emulated address: the splice must dial the meta server
  // *from* kNsB so the split-horizon view still matches, then re-frame
  // the response back down this connection.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in sa = SockAddr(kNsB, (*relay)->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  Bytes framed =
      std::move(dns::FrameMessage(MakeQueryWire("deep.www.b.test", 99))).value();
  ASSERT_EQ(::write(fd, framed.data(), framed.size()),
            static_cast<ssize_t>(framed.size()));

  dns::StreamAssembler assembler;
  Bytes reply_wire;
  uint8_t buf[4096];
  timeval tv{.tv_sec = 5, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  while (reply_wire.empty()) {
    ssize_t got = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(got, 0) << "no framed reply within timeout";
    ASSERT_TRUE(assembler.Feed(std::span<const uint8_t>(buf,
                                                        static_cast<size_t>(
                                                            got)))
                    .ok());
    if (auto message = assembler.NextMessage()) reply_wire = *message;
  }
  ::close(fd);

  auto reply = dns::Message::Decode(reply_wire);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->id, 99);
  EXPECT_EQ(reply->rcode, dns::Rcode::kNoError);
  ASSERT_EQ(reply->answers.size(), 1u);

  RelayStats stats = (*relay)->TotalStats();
  EXPECT_EQ(stats.tcp_accepted, 1u);
  EXPECT_EQ(stats.tcp_queries, 1u);
  EXPECT_EQ(stats.tcp_responses, 1u);
  (*relay)->Stop();
  (*meta)->Stop();
}

TEST(HierarchyProxyTest, LruEvictionDropsAndCountsLateReplies) {
  ManualMeta meta;

  RelayConfig config;
  config.addresses = {kNsA};
  config.meta_server = meta.endpoint();
  config.flow_capacity = 4;
  config.flow_linger = Seconds(5);  // keep drained sockets observable
  config.splice_tcp = false;
  auto relay = HierarchyProxy::Start(config);
  ASSERT_TRUE(relay.ok()) << relay.error().ToString();
  Endpoint service{kNsA, (*relay)->port()};

  // Six distinct client ports → six flows through a table of four: the
  // two oldest get LRU-evicted into the draining state.
  std::vector<std::unique_ptr<UdpClient>> clients;
  std::vector<ManualMeta::Seen> seen;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(std::make_unique<UdpClient>());
    clients.back()->SendTo(service,
                           MakeQueryWire("q" + std::to_string(i) + ".a.test",
                                         static_cast<uint16_t>(i)));
    auto arrived = meta.Read();
    ASSERT_TRUE(arrived.has_value()) << "query " << i << " never relayed";
    EXPECT_EQ(arrived->from.addr, kNsA);  // rewritten source is the OQDA
    EXPECT_EQ(arrived->from.port, clients.back()->port());
    seen.push_back(*arrived);
  }
  ASSERT_TRUE(WaitFor([&] {
    return (*relay)->TotalStats().flows_evicted >= 2;
  })) << "LRU never evicted under pressure";
  RelayStats stats = (*relay)->TotalStats();
  EXPECT_EQ(stats.flows_created, 6u);
  EXPECT_EQ(stats.active_flows, 4);

  // A late reply for the oldest (evicted) flow must be dropped and
  // counted, not forwarded to the client.
  meta.ReplyTo(seen[0]);
  ASSERT_TRUE(WaitFor([&] {
    return (*relay)->TotalStats().evicted_drops >= 1;
  })) << "late reply for drained flow was not counted";
  EXPECT_TRUE(clients[0]->Recv(nullptr, 200).empty())
      << "evicted flow must not deliver";

  // A reply for a still-resident flow is delivered normally.
  meta.ReplyTo(seen[5]);
  EXPECT_FALSE(clients[5]->Recv(nullptr, 5000).empty());
  (*relay)->Stop();
}

TEST(HierarchyProxyTest, IdleFlowsExpireOnTheWheel) {
  ManualMeta meta;

  RelayConfig config;
  config.addresses = {kNsA};
  config.meta_server = meta.endpoint();
  config.flow_idle_timeout = Millis(50);
  config.flow_linger = Millis(50);
  config.splice_tcp = false;
  auto relay = HierarchyProxy::Start(config);
  ASSERT_TRUE(relay.ok()) << relay.error().ToString();

  UdpClient client;
  client.SendTo(Endpoint{kNsA, (*relay)->port()},
                MakeQueryWire("idle.a.test", 1));
  ASSERT_TRUE(meta.Read().has_value());
  ASSERT_TRUE(WaitFor([&] {
    return (*relay)->TotalStats().flows_expired >= 1;
  })) << "idle flow never expired";
  EXPECT_TRUE(WaitFor([&] {
    return (*relay)->TotalStats().active_flows == 0;
  }));
  (*relay)->Stop();
}

TEST(HierarchyProxyTest, RestartMidReplayRetransmitsRecover) {
  // Wildcard view keyed on the emulated source, so every replayed query
  // is answerable.
  zone::ViewTable views;
  ASSERT_TRUE(
      views.AddView("a", {kNsA}, OneZoneSet("a.test.", "192.0.2.9")).ok());
  auto shared_views =
      std::make_shared<const zone::ViewTable>(std::move(views));

  server::ShardedDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};
  sconfig.n_shards = 1;
  sconfig.serve_tcp = false;
  auto meta = server::ShardedDnsServer::Start(shared_views, sconfig);
  ASSERT_TRUE(meta.ok()) << meta.error().ToString();

  RelayConfig config;
  config.addresses = {kNsA};
  config.meta_server = (*meta)->endpoint();
  config.splice_tcp = false;
  auto relay = HierarchyProxy::Start(config);
  ASSERT_TRUE(relay.ok()) << relay.error().ToString();
  const uint16_t service_port = (*relay)->port();

  workload::FixedIntervalConfig tconfig;
  tconfig.interarrival = Millis(1);
  tconfig.duration = Millis(600);
  tconfig.n_clients = 8;
  tconfig.base_name = *dns::Name::Parse("a.test");
  auto records = workload::MakeFixedIntervalTrace(tconfig);
  for (auto& record : records) {
    record.dst = kNsA;
    record.dst_port = service_port;
  }

  replay::RealtimeConfig rconfig;
  rconfig.follow_trace_dst = true;  // already bindable 127/8 addresses
  rconfig.n_distributors = 1;
  rconfig.queriers_per_distributor = 1;
  rconfig.query_timeout = Millis(250);
  rconfig.max_retransmits = 4;

  // Kill the proxy ~1/4 into the replay and bring a fresh one up on the
  // same port: queries in flight during the gap must be recovered by the
  // replay engine's retransmits, landing on the restarted proxy.
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    (*relay)->Stop();
    RelayConfig again = config;
    again.port = service_port;
    auto second = HierarchyProxy::Start(again);
    ASSERT_TRUE(second.ok()) << second.error().ToString();
    relay = std::move(second);
  });
  auto report = replay::RunRealtimeReplay(records, rconfig);
  restarter.join();
  ASSERT_TRUE(report.ok()) << report.error().ToString();

  EXPECT_EQ(report->queries_sent, records.size());
  EXPECT_EQ(report->answered, records.size())
      << "retransmits must recover queries lost across the restart "
      << "(timed_out=" << report->timed_out
      << " send_failed=" << report->send_failed << ")";
  (*relay)->Stop();
  (*meta)->Stop();
}

}  // namespace
}  // namespace ldp::proxy
