// Unit tests for the OQDA rewrite algebra (paper §2.4, Figure 2) at the
// packet level, independent of any resolver or server logic.
#include <gtest/gtest.h>

#include "proxy/proxy.h"

namespace ldp::proxy {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : net_(sim_) { net_.SetDefaultOneWayDelay(Millis(1)); }

  sim::SimPacket Capture(IpAddress at, uint16_t port) {
    sim::SimPacket captured;
    auto listen_ok = net_.ListenUdp(
        Endpoint{at, port},
        [&captured](const sim::SimPacket& packet) { captured = packet; });
    EXPECT_TRUE(listen_ok.ok());
    sim_.Run();
    return captured;
  }

  sim::Simulator sim_;
  sim::SimNetwork net_;
  IpAddress recursive_{10, 0, 0, 2};
  IpAddress meta_{10, 0, 0, 50};
  IpAddress oqda_{198, 41, 0, 4};  // a public nameserver address
};

TEST_F(ProxyTest, RecursiveProxyRewritesQuery) {
  RecursiveProxy proxy(net_, recursive_, meta_);

  // The recursive sends a query to the (nonexistent) public address.
  sim::SimPacket at_meta;
  auto listen_ok = net_.ListenUdp(Endpoint{meta_, 53},
                                  [&](const sim::SimPacket& packet) {
                                    at_meta = packet;
                                  });
  ASSERT_TRUE(listen_ok.ok());
  net_.SendUdp(Endpoint{recursive_, 12345}, Endpoint{oqda_, 53}, {0x42});
  sim_.Run();

  // Delivered to the meta server with src = OQDA (the zone selector),
  // ports untouched.
  EXPECT_EQ(at_meta.src, oqda_);
  EXPECT_EQ(at_meta.src_port, 12345);
  EXPECT_EQ(at_meta.dst, meta_);
  EXPECT_EQ(at_meta.dst_port, 53);
  EXPECT_EQ(at_meta.payload, Bytes{0x42});
  EXPECT_EQ(proxy.stats().rewritten, 1u);
  EXPECT_EQ(proxy.stats().passed_through, 0u);
}

TEST_F(ProxyTest, AuthoritativeProxyRestoresReplySource) {
  AuthoritativeProxy proxy(net_, meta_, recursive_);

  // The meta server replies toward the OQDA (the rewritten query source).
  sim::SimPacket at_recursive;
  auto listen_ok = net_.ListenUdp(Endpoint{recursive_, 12345},
                                  [&](const sim::SimPacket& packet) {
                                    at_recursive = packet;
                                  });
  ASSERT_TRUE(listen_ok.ok());
  net_.SendUdp(Endpoint{meta_, 53}, Endpoint{oqda_, 12345}, {0x99});
  sim_.Run();

  // The recursive sees the reply coming *from* the public address it
  // queried, at its original ephemeral port.
  EXPECT_EQ(at_recursive.src, oqda_);
  EXPECT_EQ(at_recursive.src_port, 53);
  EXPECT_EQ(at_recursive.dst, recursive_);
  EXPECT_EQ(at_recursive.dst_port, 12345);
  EXPECT_EQ(proxy.stats().rewritten, 1u);
  EXPECT_EQ(proxy.stats().passed_through, 0u);
}

TEST_F(ProxyTest, RoundTripComposesToIdentityForTheResolver) {
  // Full loop: query out, echoed reply back. From the resolver's point of
  // view the pair of rewrites must compose to "I asked X and X answered".
  RecursiveProxy rproxy(net_, recursive_, meta_);
  AuthoritativeProxy aproxy(net_, meta_, recursive_);

  auto meta_ok = net_.ListenUdp(
      Endpoint{meta_, 53}, [&](const sim::SimPacket& packet) {
        // Echo server: reply to wherever the query claims to come from.
        net_.SendUdp(Endpoint{packet.dst, packet.dst_port},
                     Endpoint{packet.src, packet.src_port}, packet.payload);
      });
  ASSERT_TRUE(meta_ok.ok());

  std::optional<sim::SimPacket> reply;
  auto rec_ok = net_.ListenUdp(Endpoint{recursive_, 40000},
                               [&](const sim::SimPacket& packet) {
                                 reply = packet;
                               });
  ASSERT_TRUE(rec_ok.ok());

  net_.SendUdp(Endpoint{recursive_, 40000}, Endpoint{oqda_, 53}, {1, 2, 3});
  sim_.Run();

  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->src, oqda_);       // reply source == query destination
  EXPECT_EQ(reply->src_port, 53);
  EXPECT_EQ(reply->payload, (Bytes{1, 2, 3}));
  // Exactly one rewrite on each leg, nothing bypassed either proxy.
  EXPECT_EQ(rproxy.stats().rewritten, 1u);
  EXPECT_EQ(rproxy.stats().passed_through, 0u);
  EXPECT_EQ(aproxy.stats().rewritten, 1u);
  EXPECT_EQ(aproxy.stats().passed_through, 0u);
}

TEST_F(ProxyTest, RewriteCountersTallyPerPacket) {
  // Every egress packet lands in exactly one of the two counters, so
  // rewritten + passed_through accounts for all traffic the hook saw.
  RecursiveProxy proxy(net_, recursive_, meta_);
  IpAddress web(203, 0, 113, 80);
  for (int i = 0; i < 3; ++i) {
    net_.SendUdp(Endpoint{recursive_, static_cast<uint16_t>(20000 + i)},
                 Endpoint{oqda_, 53}, {static_cast<uint8_t>(i)});
  }
  for (int i = 0; i < 2; ++i) {
    net_.SendUdp(Endpoint{recursive_, static_cast<uint16_t>(21000 + i)},
                 Endpoint{web, 80}, {static_cast<uint8_t>(i)});
  }
  sim_.Run();
  EXPECT_EQ(proxy.stats().rewritten, 3u);
  EXPECT_EQ(proxy.stats().passed_through, 2u);
}

TEST_F(ProxyTest, NonDnsTrafficPassesThrough) {
  RecursiveProxy proxy(net_, recursive_, meta_);
  // Port 80 traffic from the recursive is not captured.
  sim::SimPacket at_target;
  IpAddress web(203, 0, 113, 80);
  auto listen_ok = net_.ListenUdp(Endpoint{web, 80},
                                  [&](const sim::SimPacket& packet) {
                                    at_target = packet;
                                  });
  ASSERT_TRUE(listen_ok.ok());
  net_.SendUdp(Endpoint{recursive_, 5555}, Endpoint{web, 80}, {7});
  sim_.Run();
  EXPECT_EQ(at_target.dst, web);
  EXPECT_EQ(at_target.src, recursive_);  // unmodified
  EXPECT_EQ(proxy.stats().rewritten, 0u);
  EXPECT_EQ(proxy.stats().passed_through, 1u);
}

TEST_F(ProxyTest, ResponsesFromRecursiveToStubsNotCaptured) {
  // The recursive's *own* replies to stubs have sport 53, dport=stub-port.
  // The recursive proxy (dport 53 capture) must leave them alone.
  RecursiveProxy proxy(net_, recursive_, meta_);
  IpAddress stub(10, 0, 0, 77);
  sim::SimPacket at_stub;
  auto listen_ok = net_.ListenUdp(Endpoint{stub, 6000},
                                  [&](const sim::SimPacket& packet) {
                                    at_stub = packet;
                                  });
  ASSERT_TRUE(listen_ok.ok());
  net_.SendUdp(Endpoint{recursive_, 53}, Endpoint{stub, 6000}, {9});
  sim_.Run();
  EXPECT_EQ(at_stub.src, recursive_);
  EXPECT_EQ(proxy.stats().rewritten, 0u);
}

TEST_F(ProxyTest, ProxyDetachesOnDestruction) {
  {
    RecursiveProxy proxy(net_, recursive_, meta_);
  }
  // After destruction queries flow (and die) normally: no crash, and the
  // packet is not redirected to the meta server.
  bool meta_got = false;
  auto listen_ok = net_.ListenUdp(Endpoint{meta_, 53},
                                  [&](const sim::SimPacket&) {
                                    meta_got = true;
                                  });
  ASSERT_TRUE(listen_ok.ok());
  net_.SendUdp(Endpoint{recursive_, 1111}, Endpoint{oqda_, 53}, {1});
  sim_.Run();
  EXPECT_FALSE(meta_got);
}

}  // namespace
}  // namespace ldp::proxy
