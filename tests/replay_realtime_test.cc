// End-to-end real-socket replay: controller → distributors → queriers over
// loopback against a real SocketDnsServer, exercising the §4 fidelity path
// with actual kernel timers and sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "dns/framing.h"
#include "mutate/mutate.h"
#include "net/sockets.h"
#include "replay/realtime.h"
#include "server/socket_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"

namespace ldp::replay {
namespace {

// TSan slows execution 5-15x, which breaks wall-clock fidelity bounds
// (they measure the scheduler, not thread safety). Races are still caught
// because the tests run end to end; only the timing assertions are gated.
#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

// Wildcard zone so every replayed query gets an answer.
std::shared_ptr<server::AuthServerEngine> MakeEngine() {
  auto zone = zone::ParseMasterFile(
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.53\n"
      "* IN A 192.0.2.200\n",
      zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<server::AuthServerEngine>(std::move(views));
}

std::vector<trace::QueryRecord> MakeTraceTo(Endpoint server, size_t n,
                                            NanoDuration gap,
                                            size_t n_clients = 20) {
  workload::FixedIntervalConfig config;
  config.interarrival = gap;
  config.duration = gap * static_cast<int64_t>(n);
  config.n_clients = n_clients;
  auto records = workload::MakeFixedIntervalTrace(config);
  for (auto& r : records) {
    r.dst = server.addr;
    r.dst_port = server.port;
  }
  return records;
}

void ForceTcp(std::vector<trace::QueryRecord>& records) {
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  pipeline.Apply(records);
}

// The tentpole invariant: with query_timeout > 0, every replayed query
// reaches a terminal outcome and the counters tie out exactly, both in
// aggregate and against the per-record states.
void ExpectTerminalAccounting(const RealtimeReport& report) {
  EXPECT_EQ(report.queries_sent,
            report.answered + report.timed_out + report.send_failed);
  uint64_t answered = 0, timed_out = 0, send_failed = 0, pending = 0;
  for (const auto& send : report.sends) {
    switch (send.state) {
      case SendOutcome::State::kAnswered: ++answered; break;
      case SendOutcome::State::kTimedOut: ++timed_out; break;
      case SendOutcome::State::kSendFailed: ++send_failed; break;
      case SendOutcome::State::kPending: ++pending; break;
    }
  }
  EXPECT_EQ(pending, 0u) << "records left without a terminal outcome";
  EXPECT_EQ(answered, report.answered);
  EXPECT_EQ(timed_out, report.timed_out);
  EXPECT_EQ(send_failed, report.send_failed);
  EXPECT_EQ(report.replies, report.answered);
}

// A local endpoint that swallows datagrams: a bound UDP socket nobody
// reads. Loopback sends succeed (full receive queues drop silently), so
// every query reaches the wire and must age out via the timer wheel.
class BlackholeUdp {
 public:
  BlackholeUdp() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (fd_ >= 0 &&
        ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      socklen_t len = sizeof(addr);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
        endpoint_ = Endpoint{IpAddress::Loopback(), ntohs(addr.sin_port)};
      }
    }
  }
  ~BlackholeUdp() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return endpoint_.port != 0; }
  Endpoint endpoint() const { return endpoint_; }

 private:
  int fd_ = -1;
  Endpoint endpoint_{};
};

// A TCP port that refuses connections: bind without listen, so connect
// gets an immediate RST.
class DeadTcpPort {
 public:
  DeadTcpPort() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (fd_ >= 0 &&
        ::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      socklen_t len = sizeof(addr);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
        endpoint_ = Endpoint{IpAddress::Loopback(), ntohs(addr.sin_port)};
      }
    }
  }
  ~DeadTcpPort() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return endpoint_.port != 0; }
  Endpoint endpoint() const { return endpoint_; }

 private:
  int fd_ = -1;
  Endpoint endpoint_{};
};

class RealtimeReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto loop = net::EventLoop::Create();
    ASSERT_TRUE(loop.ok());
    loop_ = std::move(*loop);

    server::SocketDnsServer::Config config;
    config.listen = Endpoint{IpAddress::Loopback(), 0};
    config.tcp_idle_timeout = Seconds(20);
    auto server = server::SocketDnsServer::Start(*loop_, MakeEngine(), config);
    ASSERT_TRUE(server.ok()) << server.error().ToString();
    server_ = std::move(*server);

    server_thread_ = std::thread([this]() { loop_->Run(); });
  }

  void TearDown() override { StopServerLoop(); }

  // RequestStop is the only cross-thread-safe way to stop a running loop
  // (ScheduleAfter from here would race with the loop thread's timer heap).
  // Tests that inspect server state call this first so the read cannot race
  // with the loop thread.
  void StopServerLoop() {
    if (!server_thread_.joinable()) return;
    loop_->RequestStop();
    server_thread_.join();
  }

  std::vector<trace::QueryRecord> MakeTrace(size_t n, NanoDuration gap,
                                            size_t n_clients = 20) {
    return MakeTraceTo(server_->endpoint(), n, gap, n_clients);
  }

  RealtimeConfig MakeConfig() {
    RealtimeConfig config;
    config.server = server_->endpoint();
    config.n_distributors = 2;
    config.queriers_per_distributor = 2;
    return config;
  }

  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<server::SocketDnsServer> server_;
  std::thread server_thread_;
};

TEST_F(RealtimeReplayTest, UdpReplayGetsAllReplies) {
  auto records = MakeTrace(200, Millis(2));  // 0.4 s of trace
  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 200u);
  // Loopback UDP against a live server: replies should be complete, but
  // allow a stray loss under heavy CI load.
  EXPECT_GE(report->replies, 198u);
  ExpectTerminalAccounting(*report);
}

TEST_F(RealtimeReplayTest, TimingStaysWithinPaperBounds) {
  auto records = MakeTrace(300, Millis(5));  // 1.5 s of trace
  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok()) << report.error().ToString();

  auto errors = report->TimingErrorsMs(/*skip_first=*/10);
  ASSERT_FALSE(errors.empty());
  if (kUnderTsan) {
    GTEST_SKIP() << "timing fidelity bounds are meaningless under TSan";
  }
  stats::Summary summary;
  summary.AddAll(errors);
  auto dist = summary.Summarize();
  // Paper Fig 6: quartiles within ±8 ms even in the worst case. A single
  // loaded CI core is noisier than DETER hardware; allow 4x headroom.
  EXPECT_GT(dist.p25, -32.0) << dist.ToString();
  EXPECT_LT(dist.p75, 32.0) << dist.ToString();
}

TEST_F(RealtimeReplayTest, FastModeOutpacesTraceTiming) {
  auto records = MakeTrace(2000, Millis(10));  // 20 s of trace time
  RealtimeConfig config = MakeConfig();
  config.fast_mode = true;
  NanoTime start = MonotonicNow();
  auto report = RunRealtimeReplay(records, config);
  NanoDuration elapsed = MonotonicNow() - start;
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries_sent, 2000u);
  // 20 s of trace replayed well under real time (generous under TSan).
  EXPECT_LT(elapsed, kUnderTsan ? Seconds(60) : Seconds(10));
}

TEST_F(RealtimeReplayTest, TcpReplayReusesConnections) {
  auto records = MakeTrace(100, Millis(2));
  ForceTcp(records);

  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 100u);
  EXPECT_GE(report->replies, 98u);
  ExpectTerminalAccounting(*report);
  // 20 sources, sticky assignment: connection count stays near the source
  // count, far below the query count. Quiesce the loop first so the map
  // read does not race with connection teardown.
  StopServerLoop();
  EXPECT_LE(server_->open_tcp_connections(), 25u);
}

TEST_F(RealtimeReplayTest, ReportHelpersProduceSeries) {
  auto records = MakeTrace(100, Millis(5));
  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ReplayInterarrivalsS().size(), 99u);
  EXPECT_FALSE(report->RateErrors().empty());
}

TEST(QueryIdAllocation, ProbesPastInflightAcrossTheWrap) {
  std::unordered_map<uint16_t, int> inflight;
  inflight[65535] = 1;
  inflight[0] = 1;
  uint16_t next = 65535;
  bool collided = false;
  auto id = AllocateQueryId(next, inflight, &collided);
  ASSERT_TRUE(id.has_value());
  // 65535 and 0 are inflight: the probe wraps past both instead of
  // clobbering them (the seed bug reused the raw counter unconditionally).
  EXPECT_EQ(*id, 1);
  EXPECT_TRUE(collided);
  EXPECT_EQ(next, 2);

  collided = false;
  id = AllocateQueryId(next, inflight, &collided);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 2);
  EXPECT_FALSE(collided);
  EXPECT_EQ(next, 3);
}

TEST(QueryIdAllocation, ExhaustedIdSpaceReturnsNullopt) {
  std::unordered_map<uint16_t, int> inflight;
  for (uint32_t id = 0; id < 0x10000; ++id) {
    inflight[static_cast<uint16_t>(id)] = 1;
  }
  uint16_t next = 123;
  bool collided = false;
  EXPECT_FALSE(AllocateQueryId(next, inflight, &collided).has_value());
}

TEST(RealtimeTransport, UdpTimeoutAndRetransmitAccounting) {
  BlackholeUdp blackhole;
  ASSERT_TRUE(blackhole.ok());
  auto records = MakeTraceTo(blackhole.endpoint(), 100, Millis(1));

  RealtimeConfig config;
  config.server = blackhole.endpoint();
  config.n_distributors = 1;
  config.queriers_per_distributor = 2;
  config.fast_mode = true;
  config.query_timeout = Millis(150);
  config.max_retransmits = 1;

  auto report = RunRealtimeReplay(records, config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 100u);
  EXPECT_EQ(report->answered, 0u);
  EXPECT_EQ(report->timed_out, 100u);
  EXPECT_EQ(report->send_failed, 0u);
  // Every query was re-sent exactly once before aging out.
  EXPECT_EQ(report->retransmits, 100u);
  for (const auto& send : report->sends) {
    EXPECT_EQ(send.retransmits, 1u);
    EXPECT_NE(send.sent, 0);
  }
  ExpectTerminalAccounting(*report);
}

// ID-wrap regression: push more queries into one querier's UDP socket than
// the 16-bit ID space holds while nothing is answered. The allocator must
// probe (counting collisions) and, when all 65536 IDs are inflight at
// once, fail the overflow sends — never clobber a live entry, which is
// what the seed code did on wrap.
TEST(RealtimeTransport, IdWrapUnderSustainedLossKeepsAccounting) {
  BlackholeUdp blackhole;
  ASSERT_TRUE(blackhole.ok());
  const size_t kQueries = 70000;
  auto records = MakeTraceTo(blackhole.endpoint(), kQueries, Micros(1));

  RealtimeConfig config;
  config.server = blackhole.endpoint();
  config.n_distributors = 1;
  config.queriers_per_distributor = 1;
  config.fast_mode = true;
  config.query_timeout = Millis(800);
  config.max_retransmits = 0;

  auto report = RunRealtimeReplay(records, config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, kQueries);
  EXPECT_EQ(report->answered, 0u);
  EXPECT_EQ(report->timed_out + report->send_failed, kQueries);
  ExpectTerminalAccounting(*report);
  if (!kUnderTsan) {
    // The burst outruns the 800 ms timeout, so the ID space fills: the
    // overflow must surface as collisions and/or explicit send failures.
    // (Under TSan the send rate is too slow for the inflight set to fill.)
    EXPECT_GT(report->id_collisions + report->send_failed, 0u);
  }
}

TEST(RealtimeTransport, TcpConnectFailureEndsSendFailed) {
  DeadTcpPort dead;
  ASSERT_TRUE(dead.ok());
  auto records = MakeTraceTo(dead.endpoint(), 20, Millis(1), /*n_clients=*/5);
  ForceTcp(records);

  RealtimeConfig config;
  config.server = dead.endpoint();
  config.n_distributors = 1;
  config.queriers_per_distributor = 2;
  config.fast_mode = true;
  config.query_timeout = Seconds(5);  // must not be what ends the queries
  config.tcp_max_reconnects = 1;
  config.tcp_reconnect_backoff = Millis(5);

  NanoTime start = MonotonicNow();
  auto report = RunRealtimeReplay(records, config);
  NanoDuration elapsed = MonotonicNow() - start;
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 20u);
  EXPECT_EQ(report->answered, 0u);
  EXPECT_EQ(report->send_failed, 20u);
  EXPECT_GE(report->tcp_reconnects, 1u);
  ExpectTerminalAccounting(*report);
  // The reconnect budget, not the query timeout, must resolve the queries.
  if (!kUnderTsan) {
    EXPECT_LT(elapsed, Seconds(5));
  }
}

// Mid-stream close: a server that kills the first connection as soon as
// query bytes arrive, then echoes frames on later connections. The client
// must re-queue the inflight frames, reconnect, and still answer
// everything. Run under ASan this also exercises destroying a
// TcpConnection from inside its own data callback on the server side.
TEST(RealtimeTransport, TcpMidStreamCloseRequeuesAndRecovers) {
  auto loop = net::EventLoop::Create();
  ASSERT_TRUE(loop.ok());

  std::vector<std::unique_ptr<net::TcpConnection>> conns;
  int accepted = 0;
  auto listener = net::TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<net::TcpConnection> conn) {
        net::TcpConnection* raw = conn.get();
        int index = accepted++;
        conns.push_back(std::move(conn));
        auto assembler = std::make_shared<dns::StreamAssembler>();
        auto status = net::TcpListener::AdoptHandlers(
            *raw,
            [&, raw, index, assembler](std::span<const uint8_t> data) {
              if (index == 0) {
                // Drop the first connection mid-stream, with the query
                // unanswered (and destroy it inside its own callback).
                for (auto& c : conns) {
                  if (c.get() == raw) c.reset();
                }
                return;
              }
              if (!assembler->Feed(data).ok()) return;
              while (auto wire = assembler->NextMessage()) {
                // Echo the query back; the client matches replies by ID.
                auto sent =
                    raw->Send(std::move(dns::FrameMessage(*wire)).value());
                EXPECT_TRUE(sent.ok());
              }
            },
            [](Status) {});
        EXPECT_TRUE(status.ok());
      });
  ASSERT_TRUE(listener.ok()) << listener.error().ToString();
  std::thread server_thread([&]() { (*loop)->Run(); });

  auto records =
      MakeTraceTo((*listener)->local(), 6, Millis(20), /*n_clients=*/1);
  ForceTcp(records);

  RealtimeConfig config;
  config.server = (*listener)->local();
  config.n_distributors = 1;
  config.queriers_per_distributor = 1;
  config.query_timeout = Seconds(5);
  config.tcp_reconnect_backoff = Millis(5);

  auto report = RunRealtimeReplay(records, config);
  (*loop)->RequestStop();
  server_thread.join();

  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 6u);
  EXPECT_EQ(report->answered, 6u);
  EXPECT_GE(report->tcp_reconnects, 1u);
  ExpectTerminalAccounting(*report);
}

TEST_F(RealtimeReplayTest, TcpClientIdleTimeoutClosesAndRedials) {
  // One source with 200 ms gaps and a 50 ms client idle timeout: the
  // connection must close between queries and redial, answering all of
  // them (the §5 idle-closure knob, client side).
  auto records = MakeTrace(4, Millis(200), /*n_clients=*/1);
  ForceTcp(records);

  RealtimeConfig config = MakeConfig();
  config.n_distributors = 1;
  config.queriers_per_distributor = 1;
  config.tcp_idle_timeout = Millis(50);

  auto report = RunRealtimeReplay(records, config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 4u);
  EXPECT_EQ(report->answered, 4u);
  EXPECT_GE(report->tcp_idle_closes, 1u);
  ExpectTerminalAccounting(*report);
}

TEST(RealtimeReplayErrors, EmptyTraceRejected) {
  RealtimeConfig config;
  config.server = Endpoint{IpAddress::Loopback(), 5353};
  EXPECT_FALSE(RunRealtimeReplay({}, config).ok());
}

}  // namespace
}  // namespace ldp::replay
