// End-to-end real-socket replay: controller → distributors → queriers over
// loopback against a real SocketDnsServer, exercising the §4 fidelity path
// with actual kernel timers and sockets.
#include <gtest/gtest.h>

#include <thread>

#include "mutate/mutate.h"
#include "replay/realtime.h"
#include "server/socket_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"

namespace ldp::replay {
namespace {

// TSan slows execution 5-15x, which breaks wall-clock fidelity bounds
// (they measure the scheduler, not thread safety). Races are still caught
// because the tests run end to end; only the timing assertions are gated.
#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

// Wildcard zone so every replayed query gets an answer.
std::shared_ptr<server::AuthServerEngine> MakeEngine() {
  auto zone = zone::ParseMasterFile(
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.53\n"
      "* IN A 192.0.2.200\n",
      zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<server::AuthServerEngine>(std::move(views));
}

class RealtimeReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto loop = net::EventLoop::Create();
    ASSERT_TRUE(loop.ok());
    loop_ = std::move(*loop);

    server::SocketDnsServer::Config config;
    config.listen = Endpoint{IpAddress::Loopback(), 0};
    config.tcp_idle_timeout = Seconds(20);
    auto server = server::SocketDnsServer::Start(*loop_, MakeEngine(), config);
    ASSERT_TRUE(server.ok()) << server.error().ToString();
    server_ = std::move(*server);

    server_thread_ = std::thread([this]() { loop_->Run(); });
  }

  void TearDown() override { StopServerLoop(); }

  // RequestStop is the only cross-thread-safe way to stop a running loop
  // (ScheduleAfter from here would race with the loop thread's timer heap).
  // Tests that inspect server state call this first so the read cannot race
  // with the loop thread.
  void StopServerLoop() {
    if (!server_thread_.joinable()) return;
    loop_->RequestStop();
    server_thread_.join();
  }

  std::vector<trace::QueryRecord> MakeTrace(size_t n, NanoDuration gap) {
    workload::FixedIntervalConfig config;
    config.interarrival = gap;
    config.duration = gap * static_cast<int64_t>(n);
    config.n_clients = 20;
    auto records = workload::MakeFixedIntervalTrace(config);
    for (auto& r : records) {
      r.dst = server_->endpoint().addr;
      r.dst_port = server_->endpoint().port;
    }
    return records;
  }

  RealtimeConfig MakeConfig() {
    RealtimeConfig config;
    config.server = server_->endpoint();
    config.n_distributors = 2;
    config.queriers_per_distributor = 2;
    return config;
  }

  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<server::SocketDnsServer> server_;
  std::thread server_thread_;
};

TEST_F(RealtimeReplayTest, UdpReplayGetsAllReplies) {
  auto records = MakeTrace(200, Millis(2));  // 0.4 s of trace
  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 200u);
  // Loopback UDP against a live server: replies should be complete, but
  // allow a stray loss under heavy CI load.
  EXPECT_GE(report->replies, 198u);
}

TEST_F(RealtimeReplayTest, TimingStaysWithinPaperBounds) {
  auto records = MakeTrace(300, Millis(5));  // 1.5 s of trace
  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok()) << report.error().ToString();

  auto errors = report->TimingErrorsMs(/*skip_first=*/10);
  ASSERT_FALSE(errors.empty());
  if (kUnderTsan) {
    GTEST_SKIP() << "timing fidelity bounds are meaningless under TSan";
  }
  stats::Summary summary;
  summary.AddAll(errors);
  auto dist = summary.Summarize();
  // Paper Fig 6: quartiles within ±8 ms even in the worst case. A single
  // loaded CI core is noisier than DETER hardware; allow 4x headroom.
  EXPECT_GT(dist.p25, -32.0) << dist.ToString();
  EXPECT_LT(dist.p75, 32.0) << dist.ToString();
}

TEST_F(RealtimeReplayTest, FastModeOutpacesTraceTiming) {
  auto records = MakeTrace(2000, Millis(10));  // 20 s of trace time
  RealtimeConfig config = MakeConfig();
  config.fast_mode = true;
  NanoTime start = MonotonicNow();
  auto report = RunRealtimeReplay(records, config);
  NanoDuration elapsed = MonotonicNow() - start;
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->queries_sent, 2000u);
  // 20 s of trace replayed well under real time (generous under TSan).
  EXPECT_LT(elapsed, kUnderTsan ? Seconds(60) : Seconds(10));
}

TEST_F(RealtimeReplayTest, TcpReplayReusesConnections) {
  auto records = MakeTrace(100, Millis(2));
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  pipeline.Apply(records);

  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->queries_sent, 100u);
  EXPECT_GE(report->replies, 98u);
  // 20 sources, sticky assignment: connection count stays near the source
  // count, far below the query count. Quiesce the loop first so the map
  // read does not race with connection teardown.
  StopServerLoop();
  EXPECT_LE(server_->open_tcp_connections(), 25u);
}

TEST_F(RealtimeReplayTest, ReportHelpersProduceSeries) {
  auto records = MakeTrace(100, Millis(5));
  auto report = RunRealtimeReplay(records, MakeConfig());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ReplayInterarrivalsS().size(), 99u);
  EXPECT_FALSE(report->RateErrors().empty());
}

TEST(RealtimeReplayErrors, EmptyTraceRejected) {
  RealtimeConfig config;
  config.server = Endpoint{IpAddress::Loopback(), 5353};
  EXPECT_FALSE(RunRealtimeReplay({}, config).ok());
}

}  // namespace
}  // namespace ldp::replay
