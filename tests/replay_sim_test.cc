#include <gtest/gtest.h>

#include "mutate/mutate.h"
#include "replay/sim_engine.h"
#include "replay/sticky.h"
#include "replay/timing.h"
#include "server/sim_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"

namespace ldp::replay {
namespace {

TEST(ReplayScheduler, DelayArithmetic) {
  ReplayScheduler scheduler;
  scheduler.Synchronize(/*trace_epoch=*/Seconds(100),
                        /*real_epoch=*/Seconds(5000));
  // Query 2 s into the trace, evaluated 0.5 s into the replay: wait 1.5 s.
  EXPECT_EQ(scheduler.DelayFor(Seconds(102), Seconds(5000) + Millis(500)),
            Millis(1500));
  // Already late: send immediately.
  EXPECT_EQ(scheduler.DelayFor(Seconds(101), Seconds(5002)), 0);
  EXPECT_EQ(scheduler.Lag(Seconds(101), Seconds(5002)), Seconds(1));
  // Exactly on time.
  EXPECT_EQ(scheduler.DelayFor(Seconds(102), Seconds(5002)), 0);
}

TEST(StickyAssigner, SameSourceSameDownstream) {
  StickyAssigner assigner(8, 42);
  IpAddress a(10, 1, 1, 1), b(10, 2, 2, 2);
  size_t slot_a = assigner.Assign(a);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(assigner.Assign(a), slot_a);
  EXPECT_LT(assigner.Assign(b), 8u);
  EXPECT_EQ(assigner.known_sources(), 2u);
}

TEST(StickyAssigner, SpreadsSources) {
  StickyAssigner assigner(4, 7);
  for (uint32_t i = 0; i < 4000; ++i) {
    assigner.Assign(IpAddress(0x0a000000 + i));
  }
  for (size_t count : assigner.source_counts()) {
    EXPECT_GT(count, 800u);
    EXPECT_LT(count, 1200u);
  }
}

class SimReplayTest : public ::testing::Test {
 protected:
  SimReplayTest() : net_(sim_) {
    net_.SetDefaultOneWayDelay(Millis(5));  // RTT = 10 ms

    auto zone = zone::ParseMasterFile(
        "$ORIGIN example.com.\n"
        "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
        "@ IN NS ns1\n"
        "ns1 IN A 192.0.2.53\n"
        "* IN A 192.0.2.200\n",  // wildcard answers every replayed name
        zone::MasterFileOptions{});
    EXPECT_TRUE(zone.ok());
    zone::ZoneSet set;
    EXPECT_TRUE(
        set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
    zone::ViewTable views;
    views.SetDefaultView(std::move(set));
    engine_ = std::make_shared<server::AuthServerEngine>(std::move(views));

    server::SimDnsServer::Config config;
    config.address = server_addr_;
    config.tcp_idle_timeout = Seconds(20);
    server_ = std::make_unique<server::SimDnsServer>(net_, engine_, config);
    EXPECT_TRUE(server_->Start().ok());
  }

  std::vector<trace::QueryRecord> MakeTrace(size_t n, NanoDuration gap) {
    workload::FixedIntervalConfig config;
    config.interarrival = gap;
    config.duration = gap * static_cast<int64_t>(n);
    config.server = server_addr_;
    config.n_clients = 10;
    return workload::MakeFixedIntervalTrace(config);
  }

  sim::Simulator sim_;
  sim::SimNetwork net_;
  IpAddress server_addr_{10, 0, 0, 1};
  std::shared_ptr<server::AuthServerEngine> engine_;
  std::unique_ptr<server::SimDnsServer> server_;
};

TEST_F(SimReplayTest, UdpRepliesInOneRtt) {
  auto records = MakeTrace(100, Millis(10));
  SimReplayConfig config;
  config.server = Endpoint{server_addr_, 53};
  config.gauge_interval = 0;
  SimReplayEngine engine(net_, config, &server_->meters());
  engine.Load(records);
  auto report = engine.Finish();

  EXPECT_EQ(report.queries_sent, 100u);
  EXPECT_EQ(report.responses, 100u);
  for (const auto& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.answered());
    EXPECT_EQ(outcome.latency(), Millis(10));  // exactly 1 RTT
    EXPECT_GT(outcome.response_bytes, 0u);
  }
  EXPECT_EQ(server_->meters().queries_served(), 100u);
}

TEST_F(SimReplayTest, TcpReusesConnectionsPerSource) {
  auto records = MakeTrace(60, Millis(50));
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  pipeline.Apply(records);

  SimReplayConfig config;
  config.server = Endpoint{server_addr_, 53};
  config.gauge_interval = 0;
  SimReplayEngine engine(net_, config, &server_->meters());
  engine.Load(records);
  auto report = engine.Finish();

  EXPECT_EQ(report.responses, 60u);
  // 10 client sources -> 10 fresh connections, the remaining 50 reused.
  EXPECT_EQ(report.fresh_connections, 10u);
  EXPECT_EQ(report.reused_connections, 50u);

  // Fresh queries cost 2 RTT, reused 1 RTT (plus possible Nagle effects on
  // the server side; with one query in flight per conn there are none).
  for (const auto& outcome : report.outcomes) {
    ASSERT_TRUE(outcome.answered());
    if (outcome.fresh_connection) {
      EXPECT_EQ(outcome.latency(), Millis(20));
    } else {
      EXPECT_EQ(outcome.latency(), Millis(10));
    }
  }
}

TEST_F(SimReplayTest, TlsFreshQueryIsFourRtts) {
  auto records = MakeTrace(10, Seconds(1));
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTls));
  pipeline.Apply(records);

  SimReplayConfig config;
  config.server = Endpoint{server_addr_, 53};
  config.gauge_interval = 0;
  SimReplayEngine engine(net_, config, &server_->meters());
  engine.Load(records);
  auto report = engine.Finish();

  ASSERT_EQ(report.responses, 10u);
  for (const auto& outcome : report.outcomes) {
    if (outcome.fresh_connection) {
      EXPECT_EQ(outcome.latency(), Millis(40));  // 4 RTT
    } else {
      EXPECT_EQ(outcome.latency(), Millis(10));  // reused: 1 RTT
    }
  }
  EXPECT_EQ(report.fresh_connections, 10u);
  // Finish() drains the whole simulation, including the server's idle
  // timeout closing every connection — so the live-session gauge is back
  // to zero by now.
  EXPECT_EQ(server_->meters().tls_sessions(), 0u);
  EXPECT_EQ(server_->meters().established_connections(), 0u);
}

TEST_F(SimReplayTest, ServerIdleTimeoutForcesReconnect) {
  // Two queries from one source 30 s apart with a 20 s server timeout:
  // both connections are fresh.
  std::vector<trace::QueryRecord> records = MakeTrace(2, Seconds(30));
  records[0].src = records[1].src = IpAddress(172, 16, 0, 1);
  for (auto& r : records) r.protocol = trace::Protocol::kTcp;

  SimReplayConfig config;
  config.server = Endpoint{server_addr_, 53};
  config.gauge_interval = 0;
  SimReplayEngine engine(net_, config, &server_->meters());
  engine.Load(records);
  auto report = engine.Finish();

  EXPECT_EQ(report.responses, 2u);
  EXPECT_EQ(report.fresh_connections, 2u);
  EXPECT_EQ(report.reused_connections, 0u);
}

TEST_F(SimReplayTest, GaugeSamplingTracksConnections) {
  auto records = MakeTrace(200, Millis(100));  // 20 s of trace
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  pipeline.Apply(records);

  SimReplayConfig config;
  config.server = Endpoint{server_addr_, 53};
  config.gauge_interval = Seconds(5);
  SimReplayEngine engine(net_, config, &server_->meters());
  engine.Load(records);
  auto report = engine.Finish();

  ASSERT_GE(report.memory_samples.size(), 3u);
  ASSERT_EQ(report.memory_samples.size(), report.established_samples.size());
  // Established connections at mid-run equal the source count.
  bool saw_connections = false;
  for (const auto& [when, value] : report.established_samples) {
    if (value == 10) saw_connections = true;
  }
  EXPECT_TRUE(saw_connections);
  // Memory grows above base when connections are up.
  uint64_t base = server_->meters().model().base_memory;
  bool memory_grew = false;
  for (const auto& [when, value] : report.memory_samples) {
    if (value > base) memory_grew = true;
  }
  EXPECT_TRUE(memory_grew);
}

TEST_F(SimReplayTest, LatencySummaryAndSourceLoads) {
  auto records = MakeTrace(50, Millis(20));
  SimReplayConfig config;
  config.server = Endpoint{server_addr_, 53};
  config.gauge_interval = 0;
  SimReplayEngine engine(net_, config, &server_->meters());
  engine.Load(records);
  auto report = engine.Finish();

  auto all = report.LatencySummary();
  EXPECT_EQ(all.count, 50u);
  EXPECT_DOUBLE_EQ(all.p50, 10.0);  // ms

  auto loads = report.SourceLoads();
  EXPECT_EQ(loads.size(), 10u);
  for (const auto& [src, count] : loads) EXPECT_EQ(count, 5u);

  // Filtering to "non-busy" sources with a threshold below their load
  // excludes everyone.
  auto none = report.LatencySummary(4);
  EXPECT_EQ(none.count, 0u);
}

}  // namespace
}  // namespace ldp::replay
