#include <gtest/gtest.h>

#include "resolver/resolver.h"
#include "server/sim_server.h"
#include "workload/hierarchy.h"

namespace ldp::resolver {
namespace {

// A simulated Internet (root + TLD + SLD authoritative nodes) and a
// recursive resolver, the substrate for hierarchy experiments.
class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest() : net_(sim_) {
    net_.SetDefaultOneWayDelay(Millis(1));

    workload::HierarchyConfig config;
    config.n_tlds = 3;
    config.n_slds_per_tld = 3;
    hierarchy_ = workload::BuildHierarchy(config);

    // One authoritative node per nameserver address.
    for (const auto& [address, origin] : hierarchy_.address_to_zone) {
      zone::ZoneSet set;
      for (const auto& zone : hierarchy_.AllZones()) {
        if (zone->origin() == origin) {
          EXPECT_TRUE(set.AddZone(zone).ok());
          break;
        }
      }
      auto node = server::MakeAuthoritativeNode(net_, address, std::move(set));
      EXPECT_NE(node, nullptr);
      servers_.push_back(std::move(node));
    }

    ResolverConfig rconfig;
    rconfig.address = resolver_addr_;
    rconfig.root_hints = hierarchy_.nameservers[dns::Name::Root()];
    resolver_ = std::make_unique<SimResolver>(net_, rconfig);
    EXPECT_TRUE(resolver_->Start().ok());
  }

  dns::Message ResolveSync(const std::string& name, dns::RRType type) {
    std::optional<dns::Message> result;
    resolver_->Resolve(*dns::Name::Parse(name), type,
                       [&](const dns::Message& response) {
                         result = response;
                       });
    sim_.Run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(dns::Message{});
  }

  sim::Simulator sim_;
  sim::SimNetwork net_;
  IpAddress resolver_addr_{10, 0, 0, 2};
  workload::Hierarchy hierarchy_;
  std::vector<std::unique_ptr<server::SimDnsServer>> servers_;
  std::unique_ptr<SimResolver> resolver_;
};

TEST_F(ResolverTest, ColdCacheWalksHierarchy) {
  ASSERT_FALSE(hierarchy_.hostnames.empty());
  std::string name = hierarchy_.hostnames.front().ToString();

  auto response = ResolveSync(name, dns::RRType::kA);
  EXPECT_EQ(response.rcode, dns::Rcode::kNoError);
  ASSERT_FALSE(response.answers.empty());
  EXPECT_EQ(response.answers[0].type, dns::RRType::kA);
  // Cold cache: root, TLD, SLD = 3 upstream queries.
  EXPECT_EQ(resolver_->stats().upstream_queries, 3u);
  EXPECT_EQ(resolver_->stats().cache_hits, 0u);
}

TEST_F(ResolverTest, WarmCacheSkipsUpperHierarchy) {
  std::string first = hierarchy_.hostnames[0].ToString();
  std::string second = hierarchy_.hostnames[1].ToString();  // same SLD

  ResolveSync(first, dns::RRType::kA);
  uint64_t after_first = resolver_->stats().upstream_queries;

  // Same name again: answered from cache, zero upstream.
  ResolveSync(first, dns::RRType::kA);
  EXPECT_EQ(resolver_->stats().upstream_queries, after_first);
  EXPECT_GE(resolver_->stats().cache_hits, 1u);

  // A sibling name in the same zone: only the SLD server is asked.
  ResolveSync(second, dns::RRType::kA);
  EXPECT_EQ(resolver_->stats().upstream_queries, after_first + 1);
}

TEST_F(ResolverTest, NxDomainFromRoot) {
  auto response = ResolveSync("no.such.tld-zzz", dns::RRType::kA);
  EXPECT_EQ(response.rcode, dns::Rcode::kNxDomain);
  // Negative caching: repeating costs no upstream queries.
  uint64_t upstream = resolver_->stats().upstream_queries;
  auto again = ResolveSync("no.such.tld-zzz", dns::RRType::kA);
  EXPECT_EQ(again.rcode, dns::Rcode::kNxDomain);
  EXPECT_EQ(resolver_->stats().upstream_queries, upstream);
}

TEST_F(ResolverTest, NoDataForMissingType) {
  std::string name = hierarchy_.hostnames.front().ToString();
  auto response = ResolveSync(name, dns::RRType::kTXT);
  EXPECT_EQ(response.rcode, dns::Rcode::kNoError);
  EXPECT_TRUE(response.answers.empty());
}

TEST_F(ResolverTest, StubInterfaceAnswersOverUdp) {
  dns::Message query = dns::Message::MakeQuery(
      hierarchy_.hostnames.front(), dns::RRType::kA, /*rd=*/true);
  query.id = 321;

  std::optional<dns::Message> reply;
  IpAddress stub(10, 0, 0, 77);
  ASSERT_TRUE(net_.ListenUdp(Endpoint{stub, 5353},
                             [&](const sim::SimPacket& packet) {
                               auto decoded =
                                   dns::Message::Decode(packet.payload);
                               if (decoded.ok()) reply = *decoded;
                             })
                  .ok());
  net_.SendUdp(Endpoint{stub, 5353}, Endpoint{resolver_addr_, 53},
               query.Encode());
  sim_.Run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, 321);
  EXPECT_TRUE(reply->qr);
  EXPECT_TRUE(reply->ra);
  EXPECT_FALSE(reply->answers.empty());
}

TEST_F(ResolverTest, CacheExpiryForcesRefetch) {
  std::string name = hierarchy_.hostnames.front().ToString();
  ResolveSync(name, dns::RRType::kA);
  uint64_t upstream = resolver_->stats().upstream_queries;

  // Host record TTL is 3600 s; advance past it. NS/glue records have much
  // longer TTLs (86400+), so only the SLD re-query is needed.
  sim_.RunUntil(sim_.Now() + Seconds(4000));
  ResolveSync(name, dns::RRType::kA);
  EXPECT_EQ(resolver_->stats().upstream_queries, upstream + 1);
}

TEST(ResolverCacheUnit, PositiveExpiry) {
  ResolverCache cache;
  dns::RRset rrset;
  rrset.name = *dns::Name::Parse("a.test");
  rrset.type = dns::RRType::kA;
  rrset.ttl = 60;
  rrset.rdatas.push_back(dns::ARdata{IpAddress(1, 2, 3, 4)});
  cache.Put(rrset, Seconds(0));
  EXPECT_TRUE(cache.Get(rrset.name, rrset.type, Seconds(59)).has_value());
  EXPECT_FALSE(cache.Get(rrset.name, rrset.type, Seconds(61)).has_value());
}

TEST(ResolverCacheUnit, NegativeNxdomainCoversAllTypes) {
  ResolverCache cache;
  auto name = *dns::Name::Parse("gone.test");
  cache.PutNegative(name, dns::RRType::kA, /*nxdomain=*/true, 300, 0);
  EXPECT_TRUE(cache.GetNegative(name, dns::RRType::kAAAA, Seconds(1))
                  .has_value());
  EXPECT_FALSE(cache.GetNegative(name, dns::RRType::kAAAA, Seconds(301))
                   .has_value());
}

TEST(ResolverCacheUnit, NodataIsTypeSpecific) {
  ResolverCache cache;
  auto name = *dns::Name::Parse("half.test");
  cache.PutNegative(name, dns::RRType::kAAAA, /*nxdomain=*/false, 300, 0);
  EXPECT_TRUE(cache.GetNegative(name, dns::RRType::kAAAA, 1).has_value());
  EXPECT_FALSE(cache.GetNegative(name, dns::RRType::kA, 1).has_value());
}

TEST(ResolverCacheUnit, DeepestNsFindsClosestCut) {
  ResolverCache cache;
  auto make_ns = [](const char* owner, const char* target) {
    dns::RRset rrset;
    rrset.name = *dns::Name::Parse(owner);
    rrset.type = dns::RRType::kNS;
    rrset.ttl = 3600;
    rrset.rdatas.push_back(dns::NsRdata{*dns::Name::Parse(target)});
    return rrset;
  };
  cache.Put(make_ns("com", "a.gtld.test"), 0);
  cache.Put(make_ns("example.com", "ns1.example.com"), 0);
  auto deepest =
      cache.DeepestNs(*dns::Name::Parse("www.example.com"), Seconds(1));
  ASSERT_TRUE(deepest.has_value());
  EXPECT_EQ(deepest->name.ToString(), "example.com.");
  auto shallow = cache.DeepestNs(*dns::Name::Parse("www.other.com"), 1);
  ASSERT_TRUE(shallow.has_value());
  EXPECT_EQ(shallow->name.ToString(), "com.");
  EXPECT_FALSE(
      cache.DeepestNs(*dns::Name::Parse("www.example.net"), 1).has_value());
}

}  // namespace
}  // namespace ldp::resolver
