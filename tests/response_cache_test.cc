// The wire-level response cache: hits must be byte-identical to a fresh
// lookup except for the two query-dependent bytes (ID, RD), keying must
// separate everything the response depends on (view, DO bit, EDNS
// presence), eviction is LRU, and truncation-prone responses never enter.
#include <gtest/gtest.h>

#include "server/engine.h"
#include "server/response_cache.h"
#include "zone/masterfile.h"

namespace ldp::server {
namespace {

zone::ZonePtr MakeZone(const char* text) {
  auto zone = zone::ParseMasterFile(text, zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().ToString());
  return std::make_shared<zone::Zone>(std::move(*zone));
}

zone::ZonePtr ExampleZone() {
  return MakeZone(R"(
$ORIGIN example.com.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.53
www IN A 192.0.2.1
big IN TXT "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
big IN TXT "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
big IN TXT "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"
big IN TXT "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
big IN TXT "eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee"
big IN TXT "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
big IN TXT "gggggggggggggggggggggggggggggggggggggggggggggggggggggggggggg"
big IN TXT "hhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhh"
big IN TXT "iiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiii"
)");
}

AuthServerEngine MakeEngine(size_t cache_entries) {
  zone::ViewTable views;
  zone::ZoneSet set;
  EXPECT_TRUE(set.AddZone(ExampleZone()).ok());
  views.SetDefaultView(std::move(set));
  EngineOptions options;
  options.response_cache_entries = cache_entries;
  return AuthServerEngine(std::move(views), options);
}

dns::Message Query(const char* name, dns::RRType type = dns::RRType::kA) {
  return dns::Message::MakeQuery(*dns::Name::Parse(name), type, false);
}

Bytes Serve(AuthServerEngine& engine, const dns::Message& query,
            IpAddress source = IpAddress(10, 0, 0, 1)) {
  auto wire = engine.HandleWire(query.Encode(), source, /*udp_limit=*/65535);
  EXPECT_TRUE(wire.ok());
  return *wire;
}

TEST(ResponseCache, HitPatchesIdAndRdOnly) {
  AuthServerEngine engine = MakeEngine(16);

  dns::Message first = Query("www.example.com");
  first.id = 0x1111;
  first.rd = false;
  Bytes miss_wire = Serve(engine, first);
  EXPECT_EQ(engine.stats().cache_misses, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);

  dns::Message repeat = first;
  repeat.id = 0x2b2b;
  repeat.rd = true;
  Bytes hit_wire = Serve(engine, repeat);
  EXPECT_EQ(engine.stats().cache_hits, 1u);

  // The hit is the stored bytes with exactly ID and RD rewritten.
  auto response = dns::Message::Decode(hit_wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->id, 0x2b2b);
  EXPECT_TRUE(response->rd);
  ASSERT_EQ(response->answers.size(), 1u);
  ASSERT_EQ(hit_wire.size(), miss_wire.size());
  for (size_t i = 4; i < hit_wire.size(); ++i) {
    EXPECT_EQ(hit_wire[i], miss_wire[i]) << "byte " << i;
  }
  // Counters follow the cached rcode, so hits keep nxdomain exact.
  dns::Message missing = Query("nope.example.com");
  Serve(engine, missing);
  Serve(engine, missing);
  EXPECT_EQ(engine.stats().nxdomain, 2u);
}

TEST(ResponseCache, DoBitAndEdnsPresenceKeyedSeparately) {
  AuthServerEngine engine = MakeEngine(16);

  dns::Message plain = Query("www.example.com");
  dns::Message edns = plain;
  edns.edns = dns::Edns{.udp_payload_size = 1232, .do_bit = false};
  dns::Message dnssec = plain;
  dnssec.edns = dns::Edns{.udp_payload_size = 1232, .do_bit = true};

  Serve(engine, plain);
  Serve(engine, edns);
  Serve(engine, dnssec);
  EXPECT_EQ(engine.stats().cache_misses, 3u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);

  Serve(engine, plain);
  Serve(engine, edns);
  Serve(engine, dnssec);
  EXPECT_EQ(engine.stats().cache_hits, 3u);
  EXPECT_EQ(engine.stats().cache_size, 3u);
}

TEST(ResponseCache, ViewIdentityKeyedSeparately) {
  // Split-horizon: the same question from different sources must not share
  // a cache entry (the answers differ per view).
  zone::ViewTable views;
  zone::ZoneSet view_a, view_b;
  EXPECT_TRUE(view_a
                  .AddZone(MakeZone(R"(
$ORIGIN split.test.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
www IN A 192.0.2.1
)"))
                  .ok());
  EXPECT_TRUE(view_b
                  .AddZone(MakeZone(R"(
$ORIGIN split.test.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
www IN A 203.0.113.9
)"))
                  .ok());
  ASSERT_TRUE(
      views.AddView("a", {IpAddress(10, 0, 0, 1)}, std::move(view_a)).ok());
  ASSERT_TRUE(
      views.AddView("b", {IpAddress(10, 0, 0, 2)}, std::move(view_b)).ok());
  EngineOptions options;
  options.response_cache_entries = 16;
  AuthServerEngine engine(std::move(views), options);

  dns::Message query = Query("www.split.test");
  Bytes from_a = Serve(engine, query, IpAddress(10, 0, 0, 1));
  Bytes from_b = Serve(engine, query, IpAddress(10, 0, 0, 2));
  EXPECT_EQ(engine.stats().cache_misses, 2u);
  EXPECT_NE(from_a, from_b);

  // Repeats hit within their own view and stay distinct.
  EXPECT_EQ(Serve(engine, query, IpAddress(10, 0, 0, 1)), from_a);
  EXPECT_EQ(Serve(engine, query, IpAddress(10, 0, 0, 2)), from_b);
  EXPECT_EQ(engine.stats().cache_hits, 2u);
}

TEST(ResponseCache, LruEviction) {
  AuthServerEngine engine = MakeEngine(2);

  dns::Message a = Query("www.example.com");
  dns::Message b = Query("ns1.example.com");
  dns::Message c = Query("gone.example.com");

  Serve(engine, a);
  Serve(engine, b);
  Serve(engine, a);  // promote a: b is now least recently used
  Serve(engine, c);  // capacity 2: evicts b
  EXPECT_EQ(engine.stats().cache_evictions, 1u);
  EXPECT_EQ(engine.stats().cache_size, 2u);

  Serve(engine, b);  // evicted: a fresh miss (and evicts a in turn)
  EXPECT_EQ(engine.stats().cache_misses, 4u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.stats().cache_evictions, 2u);
}

TEST(ResponseCache, TruncatedResponsesBypassStorage) {
  AuthServerEngine engine = MakeEngine(16);

  // Nine 60-byte TXT strings exceed the 512-byte pre-EDNS limit, so over
  // UDP this truncates — and must never be cached.
  dns::Message big = Query("big.example.com", dns::RRType::kTXT);
  auto first = engine.HandleWire(big.Encode(), IpAddress(10, 0, 0, 1),
                                 /*udp_limit=*/512);
  ASSERT_TRUE(first.ok());
  ASSERT_GE(first->size(), 4u);
  EXPECT_TRUE((*first)[2] & 0x02) << "expected TC";
  EXPECT_EQ(engine.stats().truncated, 1u);
  EXPECT_EQ(engine.stats().cache_size, 0u);

  auto second = engine.HandleWire(big.Encode(), IpAddress(10, 0, 0, 1),
                                  /*udp_limit=*/512);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.stats().cache_misses, 2u);

  // The same answer over a stream transport (udp_limit 0: no truncation)
  // is cacheable — the limit is part of the key, so it cannot collide with
  // the TC-prone UDP bucket.
  auto stream1 =
      engine.HandleWire(big.Encode(), IpAddress(10, 0, 0, 1), 0);
  auto stream2 =
      engine.HandleWire(big.Encode(), IpAddress(10, 0, 0, 1), 0);
  ASSERT_TRUE(stream1.ok());
  ASSERT_TRUE(stream2.ok());
  EXPECT_EQ(*stream1, *stream2);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST(ResponseCache, UnusualQueriesBypass) {
  AuthServerEngine engine = MakeEngine(16);

  dns::Message notify = Query("www.example.com");
  notify.opcode = dns::Opcode::kNotify;
  auto served = engine.HandleWire(notify.Encode(), IpAddress(10, 0, 0, 1),
                                  /*udp_limit=*/65535);
  EXPECT_TRUE(served.ok());
  EXPECT_EQ(engine.stats().cache_bypass, 1u);
  EXPECT_EQ(engine.stats().cache_misses, 0u);
  EXPECT_EQ(engine.stats().cache_size, 0u);
}

TEST(ParseWireQuery, ExtractsKeyFields) {
  dns::Message query = Query("www.example.com");
  query.id = 0xbeef;
  query.rd = true;
  query.edns = dns::Edns{.udp_payload_size = 1232, .do_bit = true};
  Bytes wire = query.Encode();

  WireQueryInfo info;
  ASSERT_TRUE(ParseWireQuery(wire, &info));
  EXPECT_EQ(info.id, 0xbeef);
  EXPECT_TRUE(info.rd);
  EXPECT_EQ(info.qtype, static_cast<uint16_t>(dns::RRType::kA));
  EXPECT_TRUE(info.has_edns);
  EXPECT_TRUE(info.do_bit);
  EXPECT_EQ(info.advertised, 1232u);
  // Question = qname (17) + qtype/qclass (4).
  EXPECT_EQ(info.question.size(), 21u);
}

TEST(ParseWireQuery, RejectsUnusualShapes) {
  WireQueryInfo info;
  dns::Message query = Query("www.example.com");
  Bytes wire = query.Encode();

  // Trailing bytes, truncated input, responses: all slow-path.
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(ParseWireQuery(trailing, &info));
  EXPECT_FALSE(
      ParseWireQuery(std::span<const uint8_t>(wire.data(), 11), &info));
  Bytes response = wire;
  response[2] |= 0x80;  // QR
  EXPECT_FALSE(ParseWireQuery(response, &info));

  // Compression pointer in the question.
  Bytes compressed = wire;
  compressed[12] = 0xc0;
  EXPECT_FALSE(ParseWireQuery(compressed, &info));

  // qdcount != 1.
  Bytes two_questions = wire;
  two_questions[5] = 2;
  EXPECT_FALSE(ParseWireQuery(two_questions, &info));

  // A valid plain query still parses.
  EXPECT_TRUE(ParseWireQuery(wire, &info));
  EXPECT_FALSE(info.has_edns);
  EXPECT_EQ(info.advertised, 0u);
}

}  // namespace
}  // namespace ldp::server
