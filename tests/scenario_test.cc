// Scenario engine (src/scenario/) + attack generators (src/mutate/attack.h)
// + anycast catchment (src/proxy/catchment.h): the pieces the scenario pack
// composes. Pure-logic checks (generator properties, mask/outcome splits,
// catchment routing) plus two real-socket checks: per-site counter
// attribution with injected reply RTT, and spoofed-flood flow churn.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <unordered_set>

#include "dns/message.h"
#include "mutate/attack.h"
#include "proxy/catchment.h"
#include "proxy/relay.h"
#include "scenario/scenario.h"
#include "server/sharded_server.h"
#include "workload/hierarchy.h"
#include "zone/masterfile.h"

namespace ldp {
namespace {

// --- Attack generators ------------------------------------------------------

TEST(AttackTraceTest, NxdomainFloodQnamesAreUniqueAndSpoofed) {
  mutate::AttackConfig config;
  config.kind = mutate::AttackKind::kNxdomainFlood;
  config.rate_qps = 2000;
  config.duration = Seconds(1);
  config.start = Millis(500);
  config.server = IpAddress(198, 41, 0, 4);
  auto records = mutate::MakeAttackTrace(config);
  ASSERT_EQ(records.size(), 2000u);

  std::unordered_set<std::string> qnames;
  NanoTime prev = 0;
  for (const auto& record : records) {
    qnames.insert(record.qname.ToString());
    EXPECT_TRUE(mutate::IsSpoofedSource(record.src));
    EXPECT_EQ(record.dst, config.server);
    EXPECT_GE(record.timestamp, prev);
    EXPECT_GE(record.timestamp, config.start);
    EXPECT_LE(record.timestamp, config.start + config.duration);
    prev = record.timestamp;
  }
  // Every qname distinct — a resolver or response cache can never hit.
  EXPECT_EQ(qnames.size(), records.size());
}

TEST(AttackTraceTest, AmplificationQueriesCarryDnssecShape) {
  mutate::AttackConfig config;
  config.kind = mutate::AttackKind::kAmplification;
  config.rate_qps = 100;
  config.duration = Seconds(1);
  auto records = mutate::MakeAttackTrace(config);
  ASSERT_EQ(records.size(), 100u);
  bool saw_any = false, saw_dnskey = false;
  for (const auto& record : records) {
    EXPECT_TRUE(record.edns);
    EXPECT_TRUE(record.do_bit);
    EXPECT_EQ(record.udp_payload_size, 4096);
    saw_any |= record.qtype == dns::RRType::kANY;
    saw_dnskey |= record.qtype == dns::RRType::kDNSKEY;
  }
  EXPECT_TRUE(saw_any);
  EXPECT_TRUE(saw_dnskey);
}

TEST(AttackTraceTest, SpoofedFloodCyclesBoundedSourcePool) {
  mutate::AttackConfig config;
  config.kind = mutate::AttackKind::kSpoofedFlood;
  config.rate_qps = 500;
  config.duration = Seconds(1);
  config.n_sources = 16;
  auto records = mutate::MakeAttackTrace(config);
  ASSERT_EQ(records.size(), 500u);
  std::unordered_set<IpAddress> sources;
  for (const auto& record : records) {
    EXPECT_TRUE(mutate::IsSpoofedSource(record.src));
    sources.insert(record.src);
  }
  EXPECT_EQ(sources.size(), 16u);
}

TEST(AttackTraceTest, OverlayMergesByTimestampAndMasksAttack) {
  std::vector<trace::QueryRecord> base(3);
  base[0].timestamp = 0;
  base[1].timestamp = 100;
  base[2].timestamp = 200;
  std::vector<trace::QueryRecord> attack(2);
  attack[0].timestamp = 50;
  attack[0].src = mutate::kSpoofedSourceBase;
  attack[1].timestamp = 150;
  attack[1].src = mutate::kSpoofedSourceBase;

  auto mask = mutate::OverlayAttack(base, std::move(attack));
  ASSERT_EQ(base.size(), 5u);
  ASSERT_EQ(mask.size(), 5u);
  NanoTime prev = 0;
  for (const auto& record : base) {
    EXPECT_GE(record.timestamp, prev);
    prev = record.timestamp;
  }
  std::vector<bool> expected = {false, true, false, true, false};
  EXPECT_EQ(mask, expected);
}

// --- Outcome split ----------------------------------------------------------

TEST(ScenarioTest, SplitOutcomesSeparatesClassesByMask) {
  replay::RealtimeReport report;
  auto add = [&](uint64_t index, bool answered, NanoDuration latency) {
    replay::SendOutcome outcome;
    outcome.trace_index = index;
    outcome.sent = Millis(10);
    if (answered) {
      outcome.replied = outcome.sent + latency;
      outcome.state = replay::SendOutcome::State::kAnswered;
    } else {
      outcome.state = replay::SendOutcome::State::kTimedOut;
    }
    report.sends.push_back(outcome);
  };
  add(0, true, Millis(2));   // legit
  add(1, true, Millis(4));   // attack
  add(2, false, 0);          // legit, timed out
  add(3, true, Millis(6));   // attack
  std::vector<bool> mask = {false, true, false, true};

  auto split = scenario::SplitOutcomes(report, mask);
  EXPECT_EQ(split.legit.sent, 2u);
  EXPECT_EQ(split.legit.answered, 1u);
  EXPECT_EQ(split.legit.timed_out, 1u);
  EXPECT_DOUBLE_EQ(split.legit.answered_rate(), 0.5);
  EXPECT_NEAR(split.legit.latency_p50_ms, 2.0, 0.01);
  EXPECT_EQ(split.attack.sent, 2u);
  EXPECT_EQ(split.attack.answered, 2u);
  EXPECT_NEAR(split.attack.latency_p99_ms, 6.0, 0.01);
}

// --- Amplification ----------------------------------------------------------

TEST(ScenarioTest, SignedZoneAmplifiesWellBeyondUnsigned) {
  mutate::AttackConfig config;
  config.kind = mutate::AttackKind::kAmplification;
  config.rate_qps = 50;
  config.duration = Seconds(1);
  auto records = mutate::MakeAttackTrace(config);

  auto factor_for = [&](bool sign) {
    auto hierarchy = workload::BuildRootHierarchy(5, sign, zone::DnssecConfig{});
    zone::ZoneSet zones;
    EXPECT_TRUE(zones.AddZone(hierarchy.root).ok());
    zone::ViewTable views;
    views.SetDefaultView(std::move(zones));
    server::AuthServerEngine engine(std::move(views));
    auto amp = scenario::ComputeAmplification(engine, records);
    EXPECT_EQ(amp.queries, records.size());
    EXPECT_GT(amp.query_bytes, 0u);
    return amp.factor();
  };
  double signed_factor = factor_for(true);
  double unsigned_factor = factor_for(false);
  EXPECT_GT(signed_factor, 5.0);
  EXPECT_GT(signed_factor, unsigned_factor);
}

// --- Catchment map ----------------------------------------------------------

TEST(CatchmentTest, LongestPrefixWinsAndDefaultCatchesTheRest) {
  proxy::CatchmentMap map;
  ASSERT_TRUE(map.AddRoute(IpAddress(10, 0, 0, 0), 8, 1).ok());
  ASSERT_TRUE(map.AddRoute(IpAddress(10, 1, 0, 0), 16, 2).ok());
  map.SetDefaultSite(0);
  EXPECT_EQ(map.Lookup(IpAddress(10, 1, 2, 3)), 2u);   // /16 beats /8
  EXPECT_EQ(map.Lookup(IpAddress(10, 2, 0, 1)), 1u);
  EXPECT_EQ(map.Lookup(IpAddress(192, 168, 0, 1)), 0u);  // default
}

TEST(CatchmentTest, ParsesSiteSpecsAndRoutesText) {
  auto sites = proxy::ParseSiteSpecs("lax:0,mia:25");
  ASSERT_TRUE(sites.ok()) << sites.error().ToString();
  ASSERT_EQ(sites->size(), 2u);
  EXPECT_EQ((*sites)[0].name, "lax");
  EXPECT_EQ((*sites)[1].rtt, Millis(25));
  EXPECT_FALSE(proxy::ParseSiteSpecs("lax:0,lax:5").ok());

  auto map = proxy::CatchmentMap::Parse(
      "# client groups\n"
      "route 127.61.0.0/16 mia\n"
      "default lax\n",
      *sites);
  ASSERT_TRUE(map.ok()) << map.error().ToString();
  EXPECT_EQ(map->route_count(), 1u);
  EXPECT_EQ(map->Lookup(IpAddress(127, 61, 4, 4)), 1u);
  EXPECT_EQ(map->Lookup(IpAddress(127, 99, 0, 1)), 0u);
  EXPECT_FALSE(proxy::CatchmentMap::Parse("route 1.2.3.0/24 ams\n", *sites)
                   .ok());  // unknown site
  EXPECT_FALSE(proxy::CatchmentMap::Parse("route 1.2.3.0/40 lax\n", *sites)
                   .ok());  // bad prefix length
}

// --- Real sockets: per-site attribution + spoofed churn ---------------------

const IpAddress kNs(127, 53, 0, 10);

sockaddr_in SockAddr(IpAddress addr, uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(addr.value());
  return sa;
}

// Blocking UDP client bound to a chosen 127/8 source address, so the
// proxy's catchment map can route it.
class BoundClient {
 public:
  explicit BoundClient(IpAddress local) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{.tv_sec = 5, .tv_usec = 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in sa = SockAddr(local, 0);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  }
  ~BoundClient() { ::close(fd_); }

  void SendTo(Endpoint dst, const Bytes& wire) {
    sockaddr_in sa = SockAddr(dst.addr, dst.port);
    EXPECT_EQ(::sendto(fd_, wire.data(), wire.size(), 0,
                       reinterpret_cast<sockaddr*>(&sa), sizeof(sa)),
              static_cast<ssize_t>(wire.size()));
  }

  Bytes Recv() {
    uint8_t buf[65536];
    ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    return got <= 0 ? Bytes{} : Bytes(buf, buf + got);
  }

 private:
  int fd_ = -1;
};

std::shared_ptr<const zone::ViewTable> WildcardViews() {
  auto zone = zone::ParseMasterFile(
      "$ORIGIN a.test.\n"
      "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.53\n"
      "* IN A 192.0.2.1\n",
      zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<const zone::ViewTable>(std::move(views));
}

Bytes QueryWire(const std::string& qname) {
  auto query = dns::Message::MakeQuery(*dns::Name::Parse(qname),
                                       dns::RRType::kA, false);
  query.id = 7;
  return query.Encode();
}

TEST(CatchmentTest, ProxyAttributesQueriesToSitesAndInjectsRtt) {
  server::ShardedDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};
  sconfig.n_shards = 1;
  sconfig.serve_tcp = false;
  auto meta = server::ShardedDnsServer::Start(WildcardViews(), sconfig);
  ASSERT_TRUE(meta.ok()) << meta.error().ToString();

  proxy::RelayConfig config;
  config.addresses = {kNs};
  config.meta_server = (*meta)->endpoint();
  config.splice_tcp = false;
  config.sites = {{"near", 0}, {"far", Millis(40)}};
  proxy::CatchmentMap catchment;
  ASSERT_TRUE(catchment.AddRoute(IpAddress(127, 62, 0, 0), 16, 1).ok());
  catchment.SetDefaultSite(0);
  config.catchment = std::move(catchment);
  auto relay = proxy::HierarchyProxy::Start(config);
  ASSERT_TRUE(relay.ok()) << relay.error().ToString();
  Endpoint service{kNs, (*relay)->port()};

  // Near client: default site, reply arrives promptly.
  BoundClient near_client(IpAddress(127, 61, 0, 9));
  near_client.SendTo(service, QueryWire("x.a.test"));
  EXPECT_FALSE(near_client.Recv().empty());

  // Far client: catchment routes 127.62/16 to the 40 ms site; the reply
  // is held on the proxy's wheel, so it cannot arrive sooner.
  BoundClient far_client(IpAddress(127, 62, 0, 9));
  auto t0 = std::chrono::steady_clock::now();
  far_client.SendTo(service, QueryWire("y.a.test"));
  EXPECT_FALSE(far_client.Recv().empty());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_GE(elapsed, 35);

  // The per-site response counter ticks after the send syscall, so the
  // client can hear the reply a beat before the counter is visible.
  for (int waited = 0;
       waited < 1000 && (*relay)->TotalStats().sites[1].responses_out < 1;
       waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  proxy::RelayStats stats = (*relay)->TotalStats();
  ASSERT_EQ(stats.sites.size(), 2u);
  EXPECT_EQ(stats.sites[0].name, "near");
  EXPECT_EQ(stats.sites[0].queries_in, 1u);
  EXPECT_EQ(stats.sites[0].responses_out, 1u);
  EXPECT_EQ(stats.sites[1].name, "far");
  EXPECT_EQ(stats.sites[1].queries_in, 1u);
  EXPECT_EQ(stats.sites[1].responses_out, 1u);
  (*relay)->Stop();
  (*meta)->Stop();
}

TEST(ScenarioTest, SpoofedFloodMintsFreshFlowsAndChurnsTheLru) {
  server::ShardedDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};
  sconfig.n_shards = 1;
  sconfig.serve_tcp = false;
  auto meta = server::ShardedDnsServer::Start(WildcardViews(), sconfig);
  ASSERT_TRUE(meta.ok()) << meta.error().ToString();

  proxy::RelayConfig config;
  config.addresses = {kNs};
  config.meta_server = (*meta)->endpoint();
  config.splice_tcp = false;
  config.flow_capacity = 32;  // tiny table: rotation must overflow it
  auto relay = proxy::HierarchyProxy::Start(config);
  ASSERT_TRUE(relay.ok()) << relay.error().ToString();

  scenario::SpoofedFloodConfig flood;
  flood.target = Endpoint{kNs, (*relay)->port()};
  flood.query_wire = QueryWire("flood.a.test");
  flood.rate_qps = 2000;
  flood.duration = Millis(500);
  flood.n_sockets = 8;
  flood.rotate_after_sends = 2;
  auto report = scenario::RunSpoofedFlood(flood);
  ASSERT_TRUE(report.ok()) << report.error().ToString();

  // Every rotation is a fresh ephemeral port = a fresh client endpoint.
  EXPECT_GT(report->sent, 500u);
  EXPECT_GE(report->sockets_opened, report->sent / flood.rotate_after_sends);
  EXPECT_GT(report->replies, 0u);  // surviving sockets do hear answers

  proxy::RelayStats stats = (*relay)->TotalStats();
  // The paced sender can fall behind wall-clock under load, so bound the
  // churn by what the flood actually minted, not by an absolute rate.
  EXPECT_GT(stats.flows_created, 3 * config.flow_capacity);
  EXPECT_GE(stats.flows_created,
            static_cast<uint64_t>(report->sockets_opened) / 2);
  EXPECT_GT(stats.flows_evicted, 0u);
  EXPECT_LE(stats.active_flows,
            static_cast<int64_t>(config.flow_capacity));
  (*relay)->Stop();
  (*meta)->Stop();
}

}  // namespace
}  // namespace ldp
