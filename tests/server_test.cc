#include <gtest/gtest.h>

#include "dns/framing.h"
#include "server/engine.h"
#include "server/sim_server.h"
#include "workload/hierarchy.h"
#include "zone/masterfile.h"

namespace ldp::server {
namespace {

zone::ZonePtr MakeZone(const char* text) {
  auto zone = zone::ParseMasterFile(text, zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok()) << (zone.ok() ? "" : zone.error().ToString());
  return std::make_shared<zone::Zone>(std::move(*zone));
}

zone::ZonePtr ExampleZone() {
  return MakeZone(R"(
$ORIGIN example.com.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.53
www IN A 192.0.2.1
)");
}

zone::ZonePtr OtherZone() {
  return MakeZone(R"(
$ORIGIN other.net.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.99
www IN A 203.0.113.7
)");
}

TEST(Engine, AnswersFromDefaultView) {
  zone::ViewTable views;
  zone::ZoneSet set;
  ASSERT_TRUE(set.AddZone(ExampleZone()).ok());
  views.SetDefaultView(std::move(set));
  AuthServerEngine engine(std::move(views));

  auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.example.com"),
                                       dns::RRType::kA, false);
  query.id = 5;
  dns::Message response = engine.HandleQuery(query, IpAddress(10, 0, 0, 9));
  EXPECT_EQ(response.rcode, dns::Rcode::kNoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(engine.stats().queries, 1u);
}

TEST(Engine, SplitHorizonSelectsZoneBySource) {
  // The same qname must get different answers depending on the query
  // source — the meta-DNS-server property (paper §2.4).
  zone::ViewTable views;
  zone::ZoneSet view_a, view_b;
  // Both views serve a zone "conflict.test" with different data.
  auto zone_a = MakeZone(
      "$ORIGIN conflict.test.\n"
      "@ 60 IN SOA ns.a. h.a. 1 2 3 4 5\n"
      "@ IN NS ns.a.\n"
      "www IN A 1.1.1.1\n");
  auto zone_b = MakeZone(
      "$ORIGIN conflict.test.\n"
      "@ 60 IN SOA ns.b. h.b. 1 2 3 4 5\n"
      "@ IN NS ns.b.\n"
      "www IN A 2.2.2.2\n");
  ASSERT_TRUE(view_a.AddZone(zone_a).ok());
  ASSERT_TRUE(view_b.AddZone(zone_b).ok());
  ASSERT_TRUE(
      views.AddView("a", {IpAddress(198, 41, 0, 4)}, std::move(view_a)).ok());
  ASSERT_TRUE(
      views.AddView("b", {IpAddress(192, 5, 6, 30)}, std::move(view_b)).ok());
  AuthServerEngine engine(std::move(views));

  auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.conflict.test"),
                                       dns::RRType::kA, false);
  auto from_a = engine.HandleQuery(query, IpAddress(198, 41, 0, 4));
  auto from_b = engine.HandleQuery(query, IpAddress(192, 5, 6, 30));
  ASSERT_EQ(from_a.answers.size(), 1u);
  ASSERT_EQ(from_b.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(from_a.answers[0].rdata).address,
            IpAddress(1, 1, 1, 1));
  EXPECT_EQ(std::get<dns::ARdata>(from_b.answers[0].rdata).address,
            IpAddress(2, 2, 2, 2));

  // Unknown source falls to the (empty) default view: REFUSED.
  auto refused = engine.HandleQuery(query, IpAddress(10, 1, 1, 1));
  EXPECT_EQ(refused.rcode, dns::Rcode::kRefused);
}

TEST(Engine, WireLevelTruncatesOverUdp) {
  zone::ViewTable views;
  zone::ZoneSet set;
  auto big = MakeZone(
      "$ORIGIN big.test.\n"
      "@ 60 IN SOA ns.big.test. h.big.test. 1 2 3 4 5\n"
      "@ IN NS ns.big.test.\n"
      "ns IN A 10.0.0.1\n");
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(big->AddRecord(dns::ResourceRecord{
        *dns::Name::Parse("fat.big.test"), dns::RRType::kTXT,
        dns::RRClass::kIN, 60,
        dns::TxtRdata{{std::string(50, 'x') + std::to_string(i)}}})
                    .ok());
  }
  ASSERT_TRUE(set.AddZone(big).ok());
  views.SetDefaultView(std::move(set));
  AuthServerEngine engine(std::move(views));

  // No EDNS: 512-byte limit applies.
  auto query = dns::Message::MakeQuery(*dns::Name::Parse("fat.big.test"),
                                       dns::RRType::kTXT, false);
  auto wire = engine.HandleWire(query.Encode(), IpAddress(10, 0, 0, 5), 65535);
  ASSERT_TRUE(wire.ok());
  EXPECT_LE(wire->size(), 512u);
  auto decoded = dns::Message::Decode(*wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->tc);
  EXPECT_EQ(engine.stats().truncated, 1u);

  // Stream transport (udp_limit = 0): full answer.
  auto stream_wire =
      engine.HandleWire(query.Encode(), IpAddress(10, 0, 0, 5), 0);
  ASSERT_TRUE(stream_wire.ok());
  auto stream_decoded = dns::Message::Decode(*stream_wire);
  ASSERT_TRUE(stream_decoded.ok());
  EXPECT_FALSE(stream_decoded->tc);
  EXPECT_EQ(stream_decoded->answers.size(), 80u);
}

TEST(Engine, DropsGarbage) {
  zone::ViewTable views;
  AuthServerEngine engine(std::move(views));
  Bytes garbage{1, 2, 3};
  EXPECT_FALSE(engine.HandleWire(garbage, IpAddress(1, 1, 1, 1), 0).ok());
  EXPECT_EQ(engine.stats().dropped, 1u);
}

class SimServerTest : public ::testing::Test {
 protected:
  SimServerTest() : net_(sim_) {
    net_.SetDefaultOneWayDelay(Millis(1));
    zone::ViewTable views;
    zone::ZoneSet set;
    EXPECT_TRUE(set.AddZone(ExampleZone()).ok());
    EXPECT_TRUE(set.AddZone(OtherZone()).ok());
    views.SetDefaultView(std::move(set));
    engine_ = std::make_shared<AuthServerEngine>(std::move(views));

    SimDnsServer::Config config;
    config.address = server_addr_;
    config.tcp_idle_timeout = Seconds(5);
    server_ = std::make_unique<SimDnsServer>(net_, engine_, config);
    EXPECT_TRUE(server_->Start().ok());
  }

  sim::Simulator sim_;
  sim::SimNetwork net_;
  IpAddress server_addr_{10, 0, 0, 1};
  IpAddress client_addr_{10, 0, 0, 2};
  std::shared_ptr<AuthServerEngine> engine_;
  std::unique_ptr<SimDnsServer> server_;
};

TEST_F(SimServerTest, AnswersUdp) {
  auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.other.net"),
                                       dns::RRType::kA, false);
  query.id = 77;

  std::optional<dns::Message> response;
  ASSERT_TRUE(net_.ListenUdp(Endpoint{client_addr_, 4444},
                             [&](const sim::SimPacket& packet) {
                               auto decoded =
                                   dns::Message::Decode(packet.payload);
                               if (decoded.ok()) response = *decoded;
                             })
                  .ok());
  net_.SendUdp(Endpoint{client_addr_, 4444}, Endpoint{server_addr_, 53},
               query.Encode());
  sim_.Run();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 77);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(response->answers[0].rdata).address,
            IpAddress(203, 0, 113, 7));
  EXPECT_EQ(server_->meters().queries_served(), 1u);
  EXPECT_GT(server_->meters().cpu_busy(), 0);
}

TEST_F(SimServerTest, AnswersTcpAndTimesOutIdleConnections) {
  sim::SimTcpStack client(net_, client_addr_);
  auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.example.com"),
                                       dns::RRType::kA, false);
  query.id = 99;

  std::optional<dns::Message> response;
  auto assembler = std::make_shared<dns::StreamAssembler>();
  sim::ConnCallbacks callbacks;
  callbacks.on_established = [&query](sim::SimTcpConnection& conn) {
    conn.Send(std::move(dns::FrameMessage(query.Encode())).value());
  };
  callbacks.on_data = [&](sim::SimTcpConnection&,
                          std::span<const uint8_t> data) {
    ASSERT_TRUE(assembler->Feed(data).ok());
    if (auto wire = assembler->NextMessage()) {
      auto decoded = dns::Message::Decode(*wire);
      if (decoded.ok()) response = *decoded;
    }
  };
  bool closed = false;
  callbacks.on_close = [&](sim::SimTcpConnection&) { closed = true; };
  ASSERT_TRUE(client.Connect(Endpoint{server_addr_, 53}, callbacks,
                             /*tls=*/false)
                  .ok());
  sim_.RunUntil(Seconds(2));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 99);
  EXPECT_EQ(server_->meters().established_connections(), 1u);

  // Idle timeout (5 s) closes it.
  sim_.RunUntil(Seconds(10));
  EXPECT_TRUE(closed);
  EXPECT_EQ(server_->meters().established_connections(), 0u);
  EXPECT_EQ(server_->meters().time_wait_connections(), 1u);
}

TEST_F(SimServerTest, AnswersTls) {
  sim::SimTcpStack client(net_, client_addr_);
  auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.example.com"),
                                       dns::RRType::kA, false);
  query.id = 31;

  std::optional<dns::Message> response;
  NanoTime reply_time = 0;
  auto assembler = std::make_shared<dns::StreamAssembler>();
  sim::ConnCallbacks callbacks;
  callbacks.on_established = [&query](sim::SimTcpConnection& conn) {
    conn.Send(std::move(dns::FrameMessage(query.Encode())).value());
  };
  callbacks.on_data = [&](sim::SimTcpConnection&,
                          std::span<const uint8_t> data) {
    ASSERT_TRUE(assembler->Feed(data).ok());
    if (auto wire = assembler->NextMessage()) {
      auto decoded = dns::Message::Decode(*wire);
      if (decoded.ok()) {
        response = *decoded;
        reply_time = sim_.Now();
      }
    }
  };
  ASSERT_TRUE(client
                  .Connect(Endpoint{server_addr_, 853}, callbacks,
                           /*tls=*/true)
                  .ok());
  sim_.RunUntil(Seconds(2));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, 31);
  // Fresh TLS query: 4 RTT at 2 ms RTT = 8 ms.
  EXPECT_EQ(reply_time, Millis(8));
  EXPECT_EQ(server_->meters().tls_sessions(), 1u);
}

}  // namespace
}  // namespace ldp::server
