// ShardedDnsServer: N worker threads behind one SO_REUSEPORT address must
// answer like a single server, and the aggregate stats snapshot must equal
// the sum of the per-shard snapshots (each engine is private: no query is
// ever double-counted or lost).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "server/sharded_server.h"
#include "zone/masterfile.h"

namespace ldp::server {
namespace {

std::shared_ptr<const zone::ViewTable> MakeViews() {
  auto zone = zone::ParseMasterFile(R"(
$ORIGIN example.com.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.53
www IN A 192.0.2.1
)",
                                    zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<const zone::ViewTable>(std::move(views));
}

// A minimal blocking UDP client: its own socket per call, so queries
// spread across the reuseport shards by source port.
Bytes Exchange(Endpoint server, const Bytes& query) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{.tv_sec = 5, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port);
  addr.sin_addr.s_addr = htonl(server.addr.value());
  EXPECT_EQ(::sendto(fd, query.data(), query.size(), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(query.size()));
  uint8_t buf[65536];
  ssize_t got = ::recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
  ::close(fd);
  EXPECT_GT(got, 0) << "no reply within timeout";
  if (got <= 0) return {};
  return Bytes(buf, buf + got);
}

TEST(ShardedServer, AnswersAcrossShardsAndAggregatesStats) {
  ShardedDnsServer::Config config;
  config.listen = Endpoint{IpAddress::Loopback(), 0};
  config.n_shards = 4;
  config.serve_tcp = false;
  config.engine.response_cache_entries = 64;
  auto server = ShardedDnsServer::Start(MakeViews(), config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();
  EXPECT_EQ((*server)->n_shards(), 4u);
  EXPECT_NE((*server)->endpoint().port, 0);  // ephemeral port resolved

  const int kQueries = 48;
  for (int i = 0; i < kQueries; ++i) {
    auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.example.com"),
                                         dns::RRType::kA, false);
    query.id = static_cast<uint16_t>(1000 + i);
    Bytes reply_wire = Exchange((*server)->endpoint(), query.Encode());
    ASSERT_FALSE(reply_wire.empty());
    auto reply = dns::Message::Decode(reply_wire);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->id, query.id);
    EXPECT_TRUE(reply->qr);
    EXPECT_EQ(reply->rcode, dns::Rcode::kNoError);
    ASSERT_EQ(reply->answers.size(), 1u);
  }

  // Every query was counted exactly once, and the aggregate equals the
  // sum of the per-shard snapshots.
  EngineStats total = (*server)->TotalStats();
  EXPECT_EQ(total.queries, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(total.responses, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(total.cache_hits + total.cache_misses,
            static_cast<uint64_t>(kQueries));

  EngineStats summed;
  for (const EngineStats& shard : (*server)->ShardStats()) summed += shard;
  EXPECT_EQ(summed.queries, total.queries);
  EXPECT_EQ(summed.responses, total.responses);
  EXPECT_EQ(summed.cache_hits, total.cache_hits);
  EXPECT_EQ(summed.cache_misses, total.cache_misses);
  EXPECT_EQ(summed.response_bytes, total.response_bytes);

  (*server)->Stop();
  (*server)->Stop();  // idempotent
  EXPECT_EQ((*server)->TotalStats().queries, total.queries);
}

// A blocking TCP client holding its connection open; one framed query
// exchange per call.
class TcpClient {
 public:
  explicit TcpClient(Endpoint server) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{.tv_sec = 5, .tv_usec = 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port);
    addr.sin_addr.s_addr = htonl(server.addr.value());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  // Sends one length-framed query and reads one length-framed reply;
  // empty on EOF or timeout.
  Bytes Exchange(const Bytes& query) {
    Bytes framed;
    framed.push_back(static_cast<uint8_t>(query.size() >> 8));
    framed.push_back(static_cast<uint8_t>(query.size()));
    framed.insert(framed.end(), query.begin(), query.end());
    if (::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(framed.size())) {
      return {};
    }
    uint8_t len_buf[2];
    if (!ReadExact(len_buf, 2)) return {};
    size_t len = (static_cast<size_t>(len_buf[0]) << 8) | len_buf[1];
    Bytes reply(len);
    if (!ReadExact(reply.data(), len)) return {};
    return reply;
  }

  // True when the server has closed this connection (EOF observed).
  bool WaitForEof() {
    uint8_t byte;
    ssize_t got = ::recv(fd_, &byte, 1, 0);
    return got == 0;
  }

 private:
  bool ReadExact(uint8_t* out, size_t n) {
    size_t have = 0;
    while (have < n) {
      ssize_t got = ::recv(fd_, out + have, n - have, 0);
      if (got <= 0) return false;
      have += static_cast<size_t>(got);
    }
    return true;
  }

  int fd_ = -1;
};

TEST(ShardedServer, TcpAcceptsSpreadAcrossShards) {
  ShardedDnsServer::Config config;
  config.listen = Endpoint{IpAddress::Loopback(), 0};
  config.n_shards = 2;
  auto server = ShardedDnsServer::Start(MakeViews(), config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();

  // 64 concurrent connections from distinct ephemeral ports: the kernel's
  // 4-tuple hash puts some on each SO_REUSEPORT listener. (The chance of
  // 64 independent picks all landing on one of two shards is 2^-63.)
  const size_t kConns = 64;
  std::vector<std::unique_ptr<TcpClient>> clients;
  for (size_t i = 0; i < kConns; ++i) {
    auto client = std::make_unique<TcpClient>((*server)->endpoint());
    ASSERT_TRUE(client->connected());
    auto query = dns::Message::MakeQuery(
        *dns::Name::Parse("www.example.com"), dns::RRType::kA, false);
    query.id = static_cast<uint16_t>(i + 1);
    Bytes reply = client->Exchange(query.Encode());
    ASSERT_FALSE(reply.empty());
    clients.push_back(std::move(client));
  }

  TcpStats total = (*server)->TotalTcpStats();
  EXPECT_EQ(total.accepted, kConns);
  EXPECT_EQ(total.open, kConns);
  EXPECT_EQ(total.rejected, 0u);
  std::vector<TcpStats> per_shard = (*server)->ShardTcpStats();
  ASSERT_EQ(per_shard.size(), 2u);
  for (size_t i = 0; i < per_shard.size(); ++i) {
    EXPECT_GT(per_shard[i].accepted, 0u)
        << "shard " << i << " accepted nothing: TCP accept is pinned";
  }
}

TEST(ShardedServer, ConnectionCapRejectsThenIdleEvictionReadmits) {
  ShardedDnsServer::Config config;
  config.listen = Endpoint{IpAddress::Loopback(), 0};
  config.n_shards = 1;
  config.max_tcp_connections = 4;
  config.tcp_idle_timeout = Millis(200);
  auto server = ShardedDnsServer::Start(MakeViews(), config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();

  // Fill the table. Each exchange proves the connection was admitted.
  std::vector<std::unique_ptr<TcpClient>> held;
  for (size_t i = 0; i < 4; ++i) {
    auto client = std::make_unique<TcpClient>((*server)->endpoint());
    ASSERT_TRUE(client->connected());
    auto query = dns::Message::MakeQuery(
        *dns::Name::Parse("www.example.com"), dns::RRType::kA, false);
    query.id = static_cast<uint16_t>(i + 1);
    ASSERT_FALSE(client->Exchange(query.Encode()).empty());
    held.push_back(std::move(client));
  }

  // One over the cap: the TCP connect completes (kernel backlog), but the
  // server closes it on accept — the client observes an immediate EOF.
  TcpClient over((*server)->endpoint());
  ASSERT_TRUE(over.connected());
  EXPECT_TRUE(over.WaitForEof());
  EXPECT_GE((*server)->TotalTcpStats().rejected, 1u);

  // Idle eviction drains the table (nothing inflight, 200ms timeout) and
  // resumes the paused listener.
  for (auto& client : held) EXPECT_TRUE(client->WaitForEof());
  held.clear();
  TcpStats after = (*server)->TotalTcpStats();
  EXPECT_EQ(after.idle_closed, 4u);
  EXPECT_EQ(after.open, 0u);

  // Below the cap again: a fresh connection is served end to end.
  TcpClient fresh((*server)->endpoint());
  ASSERT_TRUE(fresh.connected());
  auto query = dns::Message::MakeQuery(*dns::Name::Parse("ns1.example.com"),
                                       dns::RRType::kA, false);
  query.id = 99;
  EXPECT_FALSE(fresh.Exchange(query.Encode()).empty());
}

TEST(ShardedServer, SingleShardServesTcpAndUdp) {
  ShardedDnsServer::Config config;
  config.listen = Endpoint{IpAddress::Loopback(), 0};
  config.n_shards = 1;
  auto server = ShardedDnsServer::Start(MakeViews(), config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();

  auto query = dns::Message::MakeQuery(*dns::Name::Parse("ns1.example.com"),
                                       dns::RRType::kA, false);
  query.id = 7;
  Bytes reply_wire = Exchange((*server)->endpoint(), query.Encode());
  ASSERT_FALSE(reply_wire.empty());
  auto reply = dns::Message::Decode(reply_wire);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rcode, dns::Rcode::kNoError);
  EXPECT_EQ((*server)->TotalStats().queries, 1u);
}

}  // namespace
}  // namespace ldp::server
