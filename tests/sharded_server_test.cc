// ShardedDnsServer: N worker threads behind one SO_REUSEPORT address must
// answer like a single server, and the aggregate stats snapshot must equal
// the sum of the per-shard snapshots (each engine is private: no query is
// ever double-counted or lost).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "server/sharded_server.h"
#include "zone/masterfile.h"

namespace ldp::server {
namespace {

std::shared_ptr<const zone::ViewTable> MakeViews() {
  auto zone = zone::ParseMasterFile(R"(
$ORIGIN example.com.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.53
www IN A 192.0.2.1
)",
                                    zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<const zone::ViewTable>(std::move(views));
}

// A minimal blocking UDP client: its own socket per call, so queries
// spread across the reuseport shards by source port.
Bytes Exchange(Endpoint server, const Bytes& query) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{.tv_sec = 5, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port);
  addr.sin_addr.s_addr = htonl(server.addr.value());
  EXPECT_EQ(::sendto(fd, query.data(), query.size(), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(query.size()));
  uint8_t buf[65536];
  ssize_t got = ::recvfrom(fd, buf, sizeof(buf), 0, nullptr, nullptr);
  ::close(fd);
  EXPECT_GT(got, 0) << "no reply within timeout";
  if (got <= 0) return {};
  return Bytes(buf, buf + got);
}

TEST(ShardedServer, AnswersAcrossShardsAndAggregatesStats) {
  ShardedDnsServer::Config config;
  config.listen = Endpoint{IpAddress::Loopback(), 0};
  config.n_shards = 4;
  config.serve_tcp = false;
  config.engine.response_cache_entries = 64;
  auto server = ShardedDnsServer::Start(MakeViews(), config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();
  EXPECT_EQ((*server)->n_shards(), 4u);
  EXPECT_NE((*server)->endpoint().port, 0);  // ephemeral port resolved

  const int kQueries = 48;
  for (int i = 0; i < kQueries; ++i) {
    auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.example.com"),
                                         dns::RRType::kA, false);
    query.id = static_cast<uint16_t>(1000 + i);
    Bytes reply_wire = Exchange((*server)->endpoint(), query.Encode());
    ASSERT_FALSE(reply_wire.empty());
    auto reply = dns::Message::Decode(reply_wire);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->id, query.id);
    EXPECT_TRUE(reply->qr);
    EXPECT_EQ(reply->rcode, dns::Rcode::kNoError);
    ASSERT_EQ(reply->answers.size(), 1u);
  }

  // Every query was counted exactly once, and the aggregate equals the
  // sum of the per-shard snapshots.
  EngineStats total = (*server)->TotalStats();
  EXPECT_EQ(total.queries, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(total.responses, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(total.cache_hits + total.cache_misses,
            static_cast<uint64_t>(kQueries));

  EngineStats summed;
  for (const EngineStats& shard : (*server)->ShardStats()) summed += shard;
  EXPECT_EQ(summed.queries, total.queries);
  EXPECT_EQ(summed.responses, total.responses);
  EXPECT_EQ(summed.cache_hits, total.cache_hits);
  EXPECT_EQ(summed.cache_misses, total.cache_misses);
  EXPECT_EQ(summed.response_bytes, total.response_bytes);

  (*server)->Stop();
  (*server)->Stop();  // idempotent
  EXPECT_EQ((*server)->TotalStats().queries, total.queries);
}

TEST(ShardedServer, SingleShardServesTcpAndUdp) {
  ShardedDnsServer::Config config;
  config.listen = Endpoint{IpAddress::Loopback(), 0};
  config.n_shards = 1;
  auto server = ShardedDnsServer::Start(MakeViews(), config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();

  auto query = dns::Message::MakeQuery(*dns::Name::Parse("ns1.example.com"),
                                       dns::RRType::kA, false);
  query.id = 7;
  Bytes reply_wire = Exchange((*server)->endpoint(), query.Encode());
  ASSERT_FALSE(reply_wire.empty());
  auto reply = dns::Message::Decode(reply_wire);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->rcode, dns::Rcode::kNoError);
  EXPECT_EQ((*server)->TotalStats().queries, 1u);
}

}  // namespace
}  // namespace ldp::server
