#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/tcp.h"

namespace ldp::sim {
namespace {

TEST(Simulator, OrderedExecution) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(5), [&] { order.push_back(2); });
  sim.Schedule(Millis(1), [&] { order.push_back(1); });
  sim.Schedule(Millis(9), [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(9));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(Millis(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, Cancel) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.Schedule(Millis(1), [&] { fired = true; });
  EXPECT_TRUE(handle.active());
  handle.Cancel();
  EXPECT_FALSE(handle.active());
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.Schedule(Millis(1), recurse);
  };
  sim.Schedule(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), Millis(9));
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.Schedule(Millis(1), [&] { ++count; });
  sim.Schedule(Millis(100), [&] { ++count; });
  sim.RunUntil(Millis(50));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), Millis(50));
  EXPECT_EQ(sim.pending_events(), 1u);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_) {
    net_.SetDefaultOneWayDelay(Millis(1));  // RTT = 2 ms
  }
  Simulator sim_;
  SimNetwork net_;
  IpAddress client_{10, 0, 0, 1};
  IpAddress server_{10, 0, 0, 2};
};

TEST_F(NetworkTest, UdpDelivery) {
  NanoTime arrival = -1;
  Bytes received;
  ASSERT_TRUE(net_.ListenUdp(Endpoint{server_, 53},
                             [&](const SimPacket& packet) {
                               arrival = sim_.Now();
                               received = packet.payload;
                             })
                  .ok());
  net_.SendUdp(Endpoint{client_, 1234}, Endpoint{server_, 53}, {1, 2, 3});
  sim_.Run();
  EXPECT_EQ(arrival, Millis(1));
  EXPECT_EQ(received, (Bytes{1, 2, 3}));
}

TEST_F(NetworkTest, UdpToClosedPortDropped) {
  net_.SendUdp(Endpoint{client_, 1234}, Endpoint{server_, 53}, {1});
  sim_.Run();  // must not crash
  EXPECT_EQ(net_.packets_delivered(), 1u);
}

TEST_F(NetworkTest, HostExtraDelayShapesRtt) {
  net_.SetHostExtraDelay(client_, Millis(9));  // one-way 10, RTT 20
  EXPECT_EQ(net_.OneWayDelay(client_, server_), Millis(10));
  EXPECT_EQ(net_.OneWayDelay(server_, client_), Millis(10));
}

TEST_F(NetworkTest, EgressHookInterceptsAndRewrites) {
  // Reroute packets addressed to 192.0.2.99 to the real server, like the
  // recursive proxy does.
  IpAddress phantom(192, 0, 2, 99);
  net_.SetEgressHook(client_, [&](SimPacket& packet) {
    if (packet.dst == phantom) {
      packet.dst = server_;
      net_.Inject(packet);
      return true;
    }
    return false;
  });
  bool got = false;
  ASSERT_TRUE(net_.ListenUdp(Endpoint{server_, 53},
                             [&](const SimPacket&) { got = true; })
                  .ok());
  net_.SendUdp(Endpoint{client_, 5353}, Endpoint{phantom, 53}, {7});
  sim_.Run();
  EXPECT_TRUE(got);
}

// TCP fixture: echo server at server_:53.
class TcpTest : public NetworkTest {
 protected:
  TcpTest()
      : client_stack_(net_, client_), server_stack_(net_, server_) {}

  // Starts an echo listener; every received chunk is sent straight back.
  void StartEchoServer(bool tls, NanoDuration idle_timeout = 0) {
    ASSERT_TRUE(server_stack_
                    .Listen(53,
                            [](SimTcpConnection&) {
                              ConnCallbacks cb;
                              cb.on_data = [](SimTcpConnection& c,
                                              std::span<const uint8_t> d) {
                                c.Send(Bytes(d.begin(), d.end()));
                              };
                              return cb;
                            },
                            tls, idle_timeout)
                    .ok());
  }

  SimTcpStack client_stack_;
  SimTcpStack server_stack_;
};

TEST_F(TcpTest, FreshTcpQueryTakesTwoRtts) {
  StartEchoServer(false);
  NanoTime reply_at = -1;
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({42}); };
  cb.on_data = [&](SimTcpConnection&, std::span<const uint8_t>) {
    reply_at = sim_.Now();
  };
  auto conn = client_stack_.Connect(Endpoint{server_, 53}, cb, false);
  ASSERT_TRUE(conn.ok());
  sim_.Run();
  // SYN (1ms) + SYN-ACK (1ms) = 1 RTT; data (1ms) + echo (1ms) = 1 RTT.
  EXPECT_EQ(reply_at, Millis(4));
}

TEST_F(TcpTest, FreshTlsQueryTakesFourRtts) {
  StartEchoServer(true);
  NanoTime reply_at = -1;
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({42}); };
  cb.on_data = [&](SimTcpConnection&, std::span<const uint8_t>) {
    reply_at = sim_.Now();
  };
  auto conn = client_stack_.Connect(Endpoint{server_, 53}, cb, true);
  ASSERT_TRUE(conn.ok());
  sim_.Run();
  // 1 RTT TCP + 2 RTT TLS handshake + 1 RTT query/response = 4 RTT = 8 ms.
  EXPECT_EQ(reply_at, Millis(8));
}

TEST_F(TcpTest, ReusedConnectionCostsOneRtt) {
  StartEchoServer(false);
  std::vector<NanoTime> replies;
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({1}); };
  cb.on_data = [&](SimTcpConnection& c, std::span<const uint8_t>) {
    replies.push_back(sim_.Now());
    if (replies.size() == 1) {
      // Second query on the warm connection, after a quiet period.
      sim_.Schedule(Millis(100), [&c] { c.Send({2}); });
    }
  };
  auto conn = client_stack_.Connect(Endpoint{server_, 53}, cb, false);
  ASSERT_TRUE(conn.ok());
  sim_.Run();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], Millis(4));  // 2 RTT fresh
  EXPECT_EQ(replies[1] - (replies[0] + Millis(100)), Millis(2));  // 1 RTT
}

TEST_F(TcpTest, NagleCoalescesBackToBackWrites) {
  // Server sends two responses back-to-back; with Nagle the second waits
  // for the first ACK, arriving as one later segment.
  ASSERT_TRUE(server_stack_
                  .Listen(53,
                          [](SimTcpConnection&) {
                            ConnCallbacks cb;
                            cb.on_data = [](SimTcpConnection& c,
                                            std::span<const uint8_t>) {
                              c.Send({1});
                              c.Send({2});  // queued behind the unacked {1}
                            };
                            return cb;
                          },
                          false, 0)
                  .ok());
  std::vector<std::pair<NanoTime, size_t>> deliveries;
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({9}); };
  cb.on_data = [&](SimTcpConnection&, std::span<const uint8_t> d) {
    deliveries.emplace_back(sim_.Now(), d.size());
  };
  ASSERT_TRUE(client_stack_.Connect(Endpoint{server_, 53}, cb, false).ok());
  sim_.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].second, 1u);  // first response alone
  // Second arrives one RTT later (waited for the ACK round trip).
  EXPECT_EQ(deliveries[1].first - deliveries[0].first, Millis(2));
}

TEST_F(TcpTest, NoDelayDisablesCoalescing) {
  ASSERT_TRUE(server_stack_
                  .Listen(53,
                          [](SimTcpConnection&) {
                            ConnCallbacks cb;
                            cb.on_data = [](SimTcpConnection& c,
                                            std::span<const uint8_t>) {
                              c.Send({1});
                              c.Send({2});
                            };
                            return cb;
                          },
                          false, 0)
                  .ok());
  // NOTE: Nagle is a property of the *sender* of the coalesced writes — the
  // server here. Server connections inherit nagle from the stack default
  // (on), so to test NODELAY we flip the client's own writes instead:
  // client sends two queries back-to-back with nagle off.
  std::vector<NanoTime> server_rx;
  SimTcpStack observer(net_, IpAddress(10, 0, 0, 3));
  ASSERT_TRUE(observer
                  .Listen(54,
                          [&](SimTcpConnection&) {
                            ConnCallbacks cb;
                            cb.on_data = [&](SimTcpConnection&,
                                             std::span<const uint8_t>) {
                              server_rx.push_back(sim_.Now());
                            };
                            return cb;
                          },
                          false, 0)
                  .ok());
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) {
    c.Send({1});
    c.Send({2});
  };
  auto conn = client_stack_.Connect(Endpoint{IpAddress(10, 0, 0, 3), 54}, cb,
                                    false, /*nagle=*/false);
  ASSERT_TRUE(conn.ok());
  sim_.Run();
  ASSERT_EQ(server_rx.size(), 2u);
  EXPECT_EQ(server_rx[0], server_rx[1]);  // same instant: no coalescing
}

TEST_F(TcpTest, IdleTimeoutClosesAndCountsTimeWait) {
  NodeMeters meters;
  net_.AttachMeters(server_, &meters);
  StartEchoServer(false, Seconds(5));
  bool closed = false;
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({1}); };
  cb.on_close = [&](SimTcpConnection&) { closed = true; };
  ASSERT_TRUE(client_stack_.Connect(Endpoint{server_, 53}, cb, false).ok());
  // The idle timeout fires ~5 s after the last activity; sample the gauges
  // at 10 s, before the 60 s TIME_WAIT expiry drains them.
  sim_.RunUntil(Seconds(10));
  EXPECT_TRUE(closed);
  EXPECT_EQ(meters.established_connections(), 0u);
  EXPECT_EQ(meters.time_wait_connections(), 1u);
}

TEST_F(TcpTest, TimeWaitExpiresAfterTwoMsl) {
  NodeMeters meters;
  net_.AttachMeters(server_, &meters);
  StartEchoServer(false, Seconds(5));
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({1}); };
  ASSERT_TRUE(client_stack_.Connect(Endpoint{server_, 53}, cb, false).ok());
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(meters.time_wait_connections(), 1u);
  sim_.RunUntil(Seconds(90));
  EXPECT_EQ(meters.time_wait_connections(), 0u);
}

TEST_F(TcpTest, MetersTrackEstablishment) {
  NodeMeters meters;
  net_.AttachMeters(server_, &meters);
  StartEchoServer(false, 0);
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({1}); };
  ASSERT_TRUE(client_stack_.Connect(Endpoint{server_, 53}, cb, false).ok());
  ASSERT_TRUE(client_stack_.Connect(Endpoint{server_, 53}, cb, false).ok());
  sim_.Run();
  EXPECT_EQ(meters.established_connections(), 2u);
  EXPECT_GT(meters.cpu_busy(), 0);
  EXPECT_GT(meters.MemoryBytes(), meters.model().base_memory);
}

TEST_F(TcpTest, TlsSessionMemoryCharged) {
  NodeMeters meters;
  net_.AttachMeters(server_, &meters);
  StartEchoServer(true, 0);
  ConnCallbacks cb;
  cb.on_established = [](SimTcpConnection& c) { c.Send({1}); };
  ASSERT_TRUE(client_stack_.Connect(Endpoint{server_, 53}, cb, true).ok());
  sim_.Run();
  EXPECT_EQ(meters.tls_sessions(), 1u);
  EXPECT_EQ(meters.MemoryBytes(),
            meters.model().base_memory + meters.model().tcp_conn_memory +
                meters.model().tls_session_memory);
}

TEST_F(TcpTest, PortExhaustionSurfaces) {
  StartEchoServer(false);
  client_stack_.set_time_wait_duration(Seconds(600));
  ConnCallbacks cb;
  // Exhaust: allocate all 64512 ephemeral ports without closing.
  size_t opened = 0;
  while (true) {
    auto conn = client_stack_.Connect(Endpoint{server_, 53}, cb, false);
    if (!conn.ok()) {
      EXPECT_EQ(conn.error().code(), ErrorCode::kResourceExhausted);
      break;
    }
    ++opened;
    ASSERT_LE(opened, 70000u);
  }
  EXPECT_EQ(opened, 64512u);
}

TEST_F(TcpTest, LargePayloadCrossesSegments) {
  StartEchoServer(true);
  Bytes big(40000, 0xab);
  Bytes echoed;
  ConnCallbacks cb;
  cb.on_established = [&](SimTcpConnection& c) { c.Send(big); };
  cb.on_data = [&](SimTcpConnection&, std::span<const uint8_t> d) {
    echoed.insert(echoed.end(), d.begin(), d.end());
  };
  ASSERT_TRUE(client_stack_.Connect(Endpoint{server_, 53}, cb, true).ok());
  sim_.Run();
  EXPECT_EQ(echoed, big);
}

}  // namespace
}  // namespace ldp::sim
