#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "stats/timeseries.h"

namespace ldp::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(Summary, QuantilesExact) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.Mean(), 0);
  EXPECT_EQ(s.Quantile(0.5), 0);
  Distribution d = s.Summarize();
  EXPECT_EQ(d.count, 0u);
}

TEST(Summary, SummarizeOrdering) {
  Summary s;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) s.Add(rng.NextDouble(0, 100));
  Distribution d = s.Summarize();
  EXPECT_LE(d.min, d.p5);
  EXPECT_LE(d.p5, d.p25);
  EXPECT_LE(d.p25, d.p50);
  EXPECT_LE(d.p50, d.p75);
  EXPECT_LE(d.p75, d.p95);
  EXPECT_LE(d.p95, d.max);
  EXPECT_NEAR(d.p50, 50, 2.0);
  EXPECT_FALSE(d.ToString().empty());
}

TEST(Summary, FinalizeKeepsQuantilesConsistent) {
  Summary a, b;
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble());
  a.AddAll(values);
  b.AddAll(values);
  b.Finalize();
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(Cdf, CoversFullRange) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(i);
  auto cdf = EmpiricalCdf(samples, 100);
  ASSERT_FALSE(cdf.empty());
  EXPECT_LE(cdf.size(), 102u);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 1000.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(RateCounter, PerSecondBuckets) {
  // Buckets are relative to the first recorded event.
  RateCounter counter;
  counter.Record(0);
  counter.Record(Millis(900));
  counter.Record(Seconds(1) + Millis(1));
  counter.Record(Seconds(3));
  auto buckets = counter.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(counter.total(), 4u);
}

TEST(RateCounter, EarlierEventShiftsOrigin) {
  RateCounter counter;
  counter.Record(Seconds(10));
  counter.Record(Seconds(8));
  auto buckets = counter.BucketCounts();
  ASSERT_GE(buckets.size(), 3u);
  EXPECT_EQ(buckets.front(), 1u);
  EXPECT_EQ(counter.total(), 2u);
}

TEST(RateCounter, RatesScaleWithWidth) {
  RateCounter counter(Millis(100));
  for (int i = 0; i < 10; ++i) counter.Record(Millis(i * 10));  // 1 bucket
  auto rates = counter.Rates();
  ASSERT_FALSE(rates.empty());
  EXPECT_DOUBLE_EQ(rates[0], 100.0);  // 10 events / 0.1 s
}

TEST(GaugeSeries, SteadyState) {
  GaugeSeries series;
  series.Sample(Seconds(0), 100);
  series.Sample(Seconds(60), 200);
  series.Sample(Seconds(120), 300);
  series.Sample(Seconds(180), 310);
  EXPECT_DOUBLE_EQ(series.Last(), 310);
  EXPECT_DOUBLE_EQ(series.SteadyStateMean(Seconds(120)), 305);
  EXPECT_DOUBLE_EQ(series.SteadyStateMax(Seconds(60)), 310);
  EXPECT_DOUBLE_EQ(GaugeSeries().Last(), 0);
}

TEST(Table, RendersAligned) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::string out = table.Render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // All lines equal or shorter than header+separator structure; check the
  // column alignment by finding "22222" after the padded "b".
  EXPECT_NE(out.find("b      22222"), std::string::npos);
}

TEST(Table, Csv) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.RenderCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace ldp::stats
