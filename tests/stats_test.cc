#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "stats/timeseries.h"

namespace ldp::stats {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(Summary, QuantilesExact) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.Mean(), 0);
  EXPECT_EQ(s.Quantile(0.5), 0);
  Distribution d = s.Summarize();
  EXPECT_EQ(d.count, 0u);
}

TEST(Summary, SummarizeOrdering) {
  Summary s;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) s.Add(rng.NextDouble(0, 100));
  Distribution d = s.Summarize();
  EXPECT_LE(d.min, d.p5);
  EXPECT_LE(d.p5, d.p25);
  EXPECT_LE(d.p25, d.p50);
  EXPECT_LE(d.p50, d.p75);
  EXPECT_LE(d.p75, d.p95);
  EXPECT_LE(d.p95, d.max);
  EXPECT_NEAR(d.p50, 50, 2.0);
  EXPECT_FALSE(d.ToString().empty());
}

TEST(Summary, FinalizeKeepsQuantilesConsistent) {
  Summary a, b;
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextDouble());
  a.AddAll(values);
  b.AddAll(values);
  b.Finalize();
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(Summary, ConcurrentConstQuantileReads) {
  // Regression: const Quantile() used to lazily sort the shared sample
  // buffer, so concurrent readers raced. Now an unfinalized Summary sorts
  // a private copy per call — run this under tsan to hold the contract.
  Summary s;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) s.Add(rng.NextDouble(0, 1000));
  double expected_p50 = s.Quantile(0.5);
  Distribution expected = s.Summarize();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (s.Quantile(0.5) != expected_p50) mismatches.fetch_add(1);
        if (s.Summarize().p95 != expected.p95) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Summary, SummarizeMatchesDirectStats) {
  // The single-sorted-pass Summarize must agree with the per-field
  // accessors it replaced.
  Summary s;
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) s.Add(rng.NextDouble(-50, 50));
  Distribution d = s.Summarize();
  EXPECT_DOUBLE_EQ(d.min, s.Min());
  EXPECT_DOUBLE_EQ(d.max, s.Max());
  EXPECT_NEAR(d.mean, s.Mean(), 1e-9);
  EXPECT_NEAR(d.stddev, s.Stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(d.p50, s.Quantile(0.5));
}

TEST(Cdf, CoversFullRange) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(i);
  auto cdf = EmpiricalCdf(samples, 100);
  ASSERT_FALSE(cdf.empty());
  EXPECT_LE(cdf.size(), 102u);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 1000.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(Cdf, DedupesEqualValues) {
  // Regression: heavy duplicate mass used to emit several points with the
  // same x, making the plotted CDF non-functional.
  std::vector<double> samples(1000, 5.0);
  samples.push_back(9.0);
  auto cdf = EmpiricalCdf(samples, 10);
  ASSERT_EQ(cdf.size(), 2u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
  }
  EXPECT_DOUBLE_EQ(cdf.front().value, 5.0);
  EXPECT_GT(cdf.front().fraction, 0.8);
  EXPECT_DOUBLE_EQ(cdf.back().value, 9.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Cdf, NeverExceedsMaxPoints) {
  // Regression: the stride used to allow max_points + 1 output points.
  std::vector<double> samples;
  for (int i = 0; i < 1003; ++i) samples.push_back(i);
  for (size_t max_points : {2u, 3u, 7u, 100u}) {
    auto cdf = EmpiricalCdf(samples, max_points);
    EXPECT_LE(cdf.size(), max_points) << "max_points=" << max_points;
    EXPECT_DOUBLE_EQ(cdf.back().value, 1002.0);
    EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  }
  auto one = EmpiricalCdf({1.0, 2.0, 3.0}, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].value, 3.0);
  EXPECT_DOUBLE_EQ(one[0].fraction, 1.0);
}

TEST(RateCounter, PerSecondBuckets) {
  // Buckets are relative to the first recorded event.
  RateCounter counter;
  counter.Record(0);
  counter.Record(Millis(900));
  counter.Record(Seconds(1) + Millis(1));
  counter.Record(Seconds(3));
  auto buckets = counter.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(counter.total(), 4u);
}

TEST(RateCounter, EarlierEventShiftsOrigin) {
  RateCounter counter;
  counter.Record(Seconds(10));
  counter.Record(Seconds(8));
  auto buckets = counter.BucketCounts();
  ASSERT_GE(buckets.size(), 3u);
  EXPECT_EQ(buckets.front(), 1u);
  EXPECT_EQ(counter.total(), 2u);
}

TEST(RateCounter, FarFutureEventIsDiscardedNotAllocated) {
  // Regression: a single corrupt far-future timestamp used to resize the
  // bucket vector to cover the whole gap (an OOM in practice). Outliers
  // past the cap are now dropped and accounted.
  RateCounter counter;
  counter.Record(0);
  counter.Record(Seconds(100000000));  // ~3 years of 1s buckets: over cap
  EXPECT_EQ(counter.BucketCounts().size(), 1u);
  EXPECT_EQ(counter.total(), 1u);
  EXPECT_EQ(counter.discarded(), 1u);
  // Sane events keep landing after the outlier.
  counter.Record(Seconds(2));
  EXPECT_EQ(counter.total(), 2u);
  EXPECT_EQ(counter.BucketCounts().size(), 3u);
  EXPECT_EQ(counter.discarded(), 1u);
}

TEST(RateCounter, FarPastOriginShiftIsBounded) {
  // Same cap on the shift-origin-down path.
  RateCounter counter;
  counter.Record(Seconds(100000000));
  counter.Record(0);  // would need ~1e8 leading buckets
  EXPECT_EQ(counter.BucketCounts().size(), 1u);
  EXPECT_EQ(counter.total(), 1u);
  EXPECT_EQ(counter.discarded(), 1u);
}

TEST(RateCounter, RatesScaleWithWidth) {
  RateCounter counter(Millis(100));
  for (int i = 0; i < 10; ++i) counter.Record(Millis(i * 10));  // 1 bucket
  auto rates = counter.Rates();
  ASSERT_FALSE(rates.empty());
  EXPECT_DOUBLE_EQ(rates[0], 100.0);  // 10 events / 0.1 s
}

TEST(GaugeSeries, SteadyState) {
  GaugeSeries series;
  series.Sample(Seconds(0), 100);
  series.Sample(Seconds(60), 200);
  series.Sample(Seconds(120), 300);
  series.Sample(Seconds(180), 310);
  EXPECT_DOUBLE_EQ(series.Last(), 310);
  EXPECT_DOUBLE_EQ(series.SteadyStateMean(Seconds(120)), 305);
  EXPECT_DOUBLE_EQ(series.SteadyStateMax(Seconds(60)), 310);
  EXPECT_DOUBLE_EQ(GaugeSeries().Last(), 0);
}

TEST(Table, RendersAligned) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::string out = table.Render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // All lines equal or shorter than header+separator structure; check the
  // column alignment by finding "22222" after the padded "b".
  EXPECT_NE(out.find("b      22222"), std::string::npos);
}

TEST(Table, Csv) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.RenderCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace ldp::stats
