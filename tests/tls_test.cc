// DNS-over-TLS transport (paper §5, the all-TLS root study): the
// TlsConnection layer itself (handshake, echo, session resumption over a
// reconnect), DoT replay end to end against the sharded server, and the
// connection-lifecycle accounting (idle-timeout close + resumed redial
// keeping `sent == answered + timed_out + send_failed`).
//
// Every TLS test probes net::TlsAvailable() and GTEST_SKIPs cleanly when
// the build has no OpenSSL; the *WithoutOpenssl tests run only then and
// pin down the stub's behavior.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "mutate/mutate.h"
#include "net/sockets.h"
#include "net/tls.h"
#include "replay/realtime.h"
#include "server/sharded_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"

namespace ldp {
namespace {

// Wildcard zone so every replayed query gets an answer.
std::shared_ptr<const zone::ViewTable> MakeViews() {
  auto zone = zone::ParseMasterFile(
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.53\n"
      "* IN A 192.0.2.200\n",
      zone::MasterFileOptions{});
  EXPECT_TRUE(zone.ok());
  zone::ZoneSet set;
  EXPECT_TRUE(
      set.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok());
  zone::ViewTable views;
  views.SetDefaultView(std::move(set));
  return std::make_shared<const zone::ViewTable>(std::move(views));
}

std::vector<trace::QueryRecord> MakeTlsTrace(Endpoint server, size_t n,
                                             NanoDuration gap,
                                             size_t n_clients) {
  workload::FixedIntervalConfig config;
  config.interarrival = gap;
  config.duration = gap * static_cast<int64_t>(n);
  config.n_clients = n_clients;
  auto records = workload::MakeFixedIntervalTrace(config);
  for (auto& r : records) {
    r.dst = server.addr;
    r.dst_port = server.port;
  }
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTls));
  pipeline.Apply(records);
  return records;
}

void ExpectTerminalAccounting(const replay::RealtimeReport& report) {
  EXPECT_EQ(report.queries_sent,
            report.answered + report.timed_out + report.send_failed);
  uint64_t pending = 0;
  for (const auto& send : report.sends) {
    if (send.state == replay::SendOutcome::State::kPending) ++pending;
  }
  EXPECT_EQ(pending, 0u) << "records left without a terminal outcome";
}

// --- the TlsConnection layer itself ---

// One event loop, a TLS echo listener, and two sequential client
// connections from one TlsContext: the first full handshake's session
// ticket must make the second connection resume.
TEST(TlsNet, HandshakeEchoThenResumedReconnect) {
  if (!net::TlsAvailable()) GTEST_SKIP() << "built without OpenSSL";
  auto loop = net::EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  auto server_ctx = net::TlsContext::NewServer();
  ASSERT_TRUE(server_ctx.ok()) << server_ctx.error().ToString();
  auto client_ctx = net::TlsContext::NewClient();
  ASSERT_TRUE(client_ctx.ok());

  // Server: accept, handshake, echo every decrypted byte back.
  std::vector<std::unique_ptr<net::StreamConn>> server_conns;
  auto listener = net::TcpListener::Listen(
      **loop, Endpoint{IpAddress::Loopback(), 0},
      [&](std::unique_ptr<net::TcpConnection> conn) {
        auto tls = net::TlsConnection::Accept(**server_ctx, std::move(conn));
        ASSERT_TRUE(tls.ok());
        net::TlsConnection* raw = tls->get();
        server_conns.push_back(std::move(*tls));
        ASSERT_TRUE(raw->Start(
                           [](Status) {},
                           [raw](std::span<const uint8_t> data) {
                             EXPECT_TRUE(raw->Send(data).ok());
                           },
                           [](Status) {})
                        .ok());
      });
  ASSERT_TRUE(listener.ok()) << listener.error().ToString();
  Endpoint server_ep = (*listener)->local();

  const Bytes kPing = {'p', 'i', 'n', 'g'};
  std::unique_ptr<net::TlsConnection> client;
  bool first_reused = true, second_reused = false, second_done = false;
  Status failure = Status::Ok();

  // Second connection: expect a resumed (abbreviated) handshake.
  auto start_second = [&]() {
    auto conn = net::TlsConnection::Connect(
        **loop, **client_ctx, server_ep,
        [&](Status status) {
          if (!status.ok()) {
            failure = status;
          } else {
            second_reused = client->session_reused();
            EXPECT_GT(client->handshake_duration(), 0);
          }
          second_done = true;
          (*loop)->RequestStop();
        },
        [](std::span<const uint8_t>) {}, [](Status) {});
    ASSERT_TRUE(conn.ok());
    client = std::move(*conn);
  };

  // First connection: full handshake, echo round trip, then close and
  // redial. The close is deferred a few ms so the server's session
  // tickets (sent after the TLS 1.3 handshake) reach our cache.
  auto conn = net::TlsConnection::Connect(
      **loop, **client_ctx, server_ep,
      [&](Status status) {
        if (!status.ok()) {
          failure = status;
          (*loop)->RequestStop();
          return;
        }
        first_reused = client->session_reused();
        EXPECT_GT(client->handshake_duration(), 0);
        EXPECT_TRUE(client->Send(kPing).ok());
      },
      [&](std::span<const uint8_t> data) {
        EXPECT_EQ(Bytes(data.begin(), data.end()), kPing);
        (*loop)->ScheduleAfter(Millis(20), [&]() {
          client.reset();  // close the first connection
          start_second();
        });
      },
      [](Status) {});
  ASSERT_TRUE(conn.ok()) << conn.error().ToString();
  client = std::move(*conn);

  // Failsafe so a wedged handshake fails the test instead of hanging it.
  (*loop)->ScheduleAfter(Seconds(10), [&]() { (*loop)->RequestStop(); });
  (*loop)->Run();

  EXPECT_TRUE(failure.ok()) << failure.error().ToString();
  ASSERT_TRUE(second_done) << "second handshake never completed";
  EXPECT_FALSE(first_reused) << "first connection cannot resume";
  EXPECT_TRUE(second_reused) << "reconnect did not resume the session";
  EXPECT_EQ((*client_ctx)->cached_sessions(), 1u);
  client.reset();
  server_conns.clear();
}

TEST(TlsNet, ContextCreationFailsCleanlyWithoutOpenssl) {
  if (net::TlsAvailable()) GTEST_SKIP() << "this build has OpenSSL";
  auto server_ctx = net::TlsContext::NewServer();
  EXPECT_FALSE(server_ctx.ok());
  auto client_ctx = net::TlsContext::NewClient();
  EXPECT_FALSE(client_ctx.ok());
  EXPECT_EQ(net::TlsAllocatedBytes(), 0u);
}

// --- DoT replay end to end ---

TEST(TlsReplay, DotReplayAnswersEveryQueryAcrossShards) {
  if (!net::TlsAvailable()) GTEST_SKIP() << "built without OpenSSL";
  server::ShardedDnsServer::Config server_config;
  server_config.listen = Endpoint{IpAddress::Loopback(), 0};
  server_config.n_shards = 2;
  server_config.serve_tls = true;
  auto server = server::ShardedDnsServer::Start(MakeViews(), server_config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();
  ASSERT_NE((*server)->tls_endpoint().port, 0);

  const size_t kQueries = 200;
  auto records =
      MakeTlsTrace((*server)->endpoint(), kQueries, Millis(1), 64);

  replay::RealtimeConfig config;
  config.server = (*server)->endpoint();
  config.tls_port = (*server)->tls_endpoint().port;
  config.n_distributors = 2;
  config.queriers_per_distributor = 2;
  config.fast_mode = true;
  auto report = replay::RunRealtimeReplay(records, config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  ExpectTerminalAccounting(*report);
  EXPECT_EQ(report->queries_sent, records.size());
  EXPECT_EQ(report->answered, records.size());
  EXPECT_GT(report->tls_handshakes, 0u);
  EXPECT_EQ(report->tls_aborts, 0u);

  (*server)->Stop();
  server::TcpStats total = (*server)->TotalTcpStats();
  EXPECT_EQ(total.tls_handshakes, report->tls_handshakes);
  EXPECT_EQ(total.tls_aborts, 0u);
  // Per-shard SO_REUSEPORT listeners: both shards must have accepted.
  for (const server::TcpStats& shard : (*server)->ShardTcpStats()) {
    EXPECT_GT(shard.accepted, 0u) << "a shard accepted no DoT connections";
  }
}

// Server-side idle timeout closes the connection between two queries of
// one source; the querier redials with a cached session and the
// accounting still ties out: 2 sent, 2 answered, 2 handshakes, the second
// resumed.
TEST(TlsReplay, IdleTimeoutRedialResumesAndAccountingHolds) {
  if (!net::TlsAvailable()) GTEST_SKIP() << "built without OpenSSL";
  server::ShardedDnsServer::Config server_config;
  server_config.listen = Endpoint{IpAddress::Loopback(), 0};
  server_config.n_shards = 1;
  server_config.serve_tls = true;
  server_config.tcp_idle_timeout = Millis(150);
  auto server = server::ShardedDnsServer::Start(MakeViews(), server_config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();

  // One client, two queries 500 ms apart: the 150 ms server idle timeout
  // fires between them.
  auto records = MakeTlsTrace((*server)->endpoint(), 2, Millis(500), 1);
  ASSERT_EQ(records.size(), 2u);

  replay::RealtimeConfig config;
  config.server = (*server)->endpoint();
  config.tls_port = (*server)->tls_endpoint().port;
  config.n_distributors = 1;
  config.queriers_per_distributor = 1;
  auto report = replay::RunRealtimeReplay(records, config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  ExpectTerminalAccounting(*report);
  EXPECT_EQ(report->queries_sent, 2u);
  EXPECT_EQ(report->answered, 2u);
  EXPECT_EQ(report->tls_handshakes, 2u);
  EXPECT_GE(report->tls_resumptions, 1u)
      << "the redial after the idle close did not resume the session";
  EXPECT_EQ(report->tls_aborts, 0u);

  (*server)->Stop();
  server::TcpStats stats = (*server)->TotalTcpStats();
  EXPECT_GE(stats.idle_closed, 1u);
  EXPECT_GE(stats.tls_resumptions, 1u);
}

// A few hundred concurrent long-lived DoT connections through the full
// stack — the test-sized version of the fig 13-15 mass-connection bench.
TEST(TlsReplay, MassConnectionLifecycle) {
  if (!net::TlsAvailable()) GTEST_SKIP() << "built without OpenSSL";
  server::ShardedDnsServer::Config server_config;
  server_config.listen = Endpoint{IpAddress::Loopback(), 0};
  server_config.n_shards = 2;
  server_config.serve_tls = true;
  auto server = server::ShardedDnsServer::Start(MakeViews(), server_config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();

  // 256 sources, one query each: every source holds its own connection,
  // so 256 concurrent TLS sessions exist before the replay drains.
  const size_t kSources = 256;
  auto records =
      MakeTlsTrace((*server)->endpoint(), kSources, Millis(1), kSources);

  replay::RealtimeConfig config;
  config.server = (*server)->endpoint();
  config.tls_port = (*server)->tls_endpoint().port;
  config.n_distributors = 2;
  config.queriers_per_distributor = 2;
  config.fast_mode = true;
  auto report = replay::RunRealtimeReplay(records, config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  ExpectTerminalAccounting(*report);
  EXPECT_EQ(report->answered, records.size());
  EXPECT_GT(net::TlsAllocatedBytes(), 0u);  // accounting hook is live

  (*server)->Stop();
  server::TcpStats total = (*server)->TotalTcpStats();
  EXPECT_EQ(total.tls_handshakes, report->tls_handshakes);
  EXPECT_EQ(total.rejected, 0u);
}

// Without OpenSSL a TLS trace must fail loudly but cleanly: every kTls
// query ends send_failed and the terminal-outcome invariant still holds.
TEST(TlsReplay, TlsTraceFailsCleanlyWithoutOpenssl) {
  if (net::TlsAvailable()) GTEST_SKIP() << "this build has OpenSSL";
  server::ShardedDnsServer::Config server_config;
  server_config.listen = Endpoint{IpAddress::Loopback(), 0};
  server_config.n_shards = 1;
  auto server = server::ShardedDnsServer::Start(MakeViews(), server_config);
  ASSERT_TRUE(server.ok()) << server.error().ToString();

  auto records = MakeTlsTrace((*server)->endpoint(), 20, Millis(1), 4);
  replay::RealtimeConfig config;
  config.server = (*server)->endpoint();
  config.fast_mode = true;
  auto report = replay::RunRealtimeReplay(records, config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  ExpectTerminalAccounting(*report);
  EXPECT_EQ(report->send_failed, records.size());
  EXPECT_EQ(report->tls_aborts, records.size());

  // And a server asked to serve DoT refuses to start.
  server_config.serve_tls = true;
  EXPECT_FALSE(
      server::ShardedDnsServer::Start(MakeViews(), server_config).ok());
}

}  // namespace
}  // namespace ldp
