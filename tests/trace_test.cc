#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "trace/binary.h"
#include "trace/pcap.h"
#include "trace/text.h"
#include "trace/tracestats.h"

namespace ldp::trace {
namespace {

QueryRecord SampleRecord() {
  QueryRecord record;
  record.timestamp = Seconds(12) + 345678901;
  record.src = IpAddress(172, 16, 0, 5);
  record.src_port = 33333;
  record.dst = IpAddress(10, 0, 0, 1);
  record.dst_port = 53;
  record.protocol = Protocol::kUdp;
  record.id = 4242;
  record.qname = *dns::Name::Parse("www.example.com");
  record.qtype = dns::RRType::kAAAA;
  record.rd = true;
  record.edns = true;
  record.udp_payload_size = 4096;
  record.do_bit = true;
  return record;
}

TEST(QueryRecord, ToMessageRoundTrip) {
  QueryRecord record = SampleRecord();
  dns::Message msg = record.ToMessage();
  EXPECT_EQ(msg.id, record.id);
  EXPECT_TRUE(msg.rd);
  ASSERT_TRUE(msg.edns.has_value());
  EXPECT_TRUE(msg.edns->do_bit);

  QueryRecord back = QueryRecord::FromMessage(
      msg, record.timestamp, record.src, record.src_port, record.dst,
      record.dst_port, record.protocol);
  EXPECT_EQ(back, record);
}

TEST(TextFormat, LineRoundTrip) {
  QueryRecord record = SampleRecord();
  std::string line = FormatQueryLine(record);
  auto parsed = ParseQueryLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString() << "\n" << line;
  EXPECT_EQ(*parsed, record);
}

TEST(TextFormat, MinimalQuery) {
  QueryRecord record;
  record.qname = *dns::Name::Parse("a.b");
  std::string line = FormatQueryLine(record);
  auto parsed = ParseQueryLine(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(*parsed, record);
}

TEST(TextFormat, ParseRejectsBadLines) {
  EXPECT_FALSE(ParseQueryLine("").ok());
  EXPECT_FALSE(ParseQueryLine("only three fields here").ok());
  EXPECT_FALSE(ParseQueryLine("1.0 1.2.3.4:5 6.7.8.9:53 udp a.b IN A 70000 - 0")
                   .ok());  // id out of range
  EXPECT_FALSE(
      ParseQueryLine("1.0 1.2.3.4:5 6.7.8.9:53 xyz a.b IN A 1 - 0").ok());
  EXPECT_FALSE(
      ParseQueryLine("1.0 1.2.3.4:5 6.7.8.9:53 udp a.b IN A 1 zz 0").ok());
}

TEST(TextFormat, FileRoundTrip) {
  std::vector<QueryRecord> records;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    QueryRecord r = SampleRecord();
    r.timestamp = Millis(i * 17);
    r.id = static_cast<uint16_t>(rng.NextU64());
    r.protocol = static_cast<Protocol>(rng.NextBelow(3));
    records.push_back(r);
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteTextTrace(records, out).ok());
  std::istringstream in(out.str());
  auto back = ReadTextTrace(in);
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(*back, records);
}

TEST(BinaryFormat, RecordRoundTrip) {
  QueryRecord record = SampleRecord();
  ByteWriter writer;
  EncodeBinaryRecord(record, writer);
  ByteReader reader(writer.data());
  auto back = DecodeBinaryRecord(reader);
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(*back, record);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryFormat, TraceRoundTrip) {
  std::vector<QueryRecord> records(100, SampleRecord());
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].timestamp = static_cast<NanoTime>(i) * Millis(1);
    records[i].id = static_cast<uint16_t>(i);
  }
  Bytes encoded = EncodeBinaryTrace(records);
  auto back = DecodeBinaryTrace(encoded);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, records);
}

TEST(BinaryFormat, DecodeRejectsCorruptStream) {
  QueryRecord record = SampleRecord();
  ByteWriter writer;
  EncodeBinaryRecord(record, writer);
  Bytes data = writer.data();
  data.resize(data.size() - 3);  // truncate payload
  EXPECT_FALSE(DecodeBinaryTrace(data).ok());
}

TEST(BinaryFormat, FileStreaming) {
  std::vector<QueryRecord> records(10, SampleRecord());
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].id = static_cast<uint16_t>(i);
  }
  std::string path = ::testing::TempDir() + "/ldp_binary_trace_test.bin";
  ASSERT_TRUE(WriteBinaryTraceFile(records, path).ok());

  auto reader = BinaryTraceReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::vector<QueryRecord> streamed;
  while (!reader->AtEnd()) {
    auto record = reader->Next();
    ASSERT_TRUE(record.ok()) << record.error().ToString();
    streamed.push_back(std::move(*record));
  }
  EXPECT_EQ(streamed, records);
  std::remove(path.c_str());
}

TEST(Pcap, UdpRoundTrip) {
  QueryRecord record = SampleRecord();
  dns::Message query = record.ToMessage();
  PacketRecord packet = MessageToPacket(
      query, record.timestamp, record.src, record.src_port, record.dst,
      record.dst_port, Protocol::kUdp);

  Bytes file = WritePcap({packet});
  auto parsed = ReadPcap(file);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  const PacketRecord& got = (*parsed)[0];
  EXPECT_EQ(got.src, packet.src);
  EXPECT_EQ(got.dst, packet.dst);
  EXPECT_EQ(got.src_port, packet.src_port);
  EXPECT_EQ(got.protocol, Protocol::kUdp);
  // Timestamps survive at microsecond granularity.
  EXPECT_NEAR(static_cast<double>(got.timestamp),
              static_cast<double>(packet.timestamp), 1000.0);

  auto back = PacketToQuery(got);
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(back->qname, record.qname);
  EXPECT_EQ(back->qtype, record.qtype);
  EXPECT_EQ(back->do_bit, record.do_bit);
}

TEST(Pcap, TcpRoundTrip) {
  QueryRecord record = SampleRecord();
  record.protocol = Protocol::kTcp;
  PacketRecord packet = MessageToPacket(
      record.ToMessage(), record.timestamp, record.src, record.src_port,
      record.dst, record.dst_port, Protocol::kTcp);
  Bytes file = WritePcap({packet});
  auto parsed = ReadPcap(file);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].protocol, Protocol::kTcp);
  auto query = PacketToQuery((*parsed)[0]);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->qname, record.qname);
}

TEST(Pcap, ResponseMessageExtraction) {
  dns::Message response;
  response.qr = true;
  response.id = 7;
  response.answers.push_back(dns::ResourceRecord{
      *dns::Name::Parse("x.test"), dns::RRType::kA, dns::RRClass::kIN, 60,
      dns::ARdata{IpAddress(1, 2, 3, 4)}});
  PacketRecord packet =
      MessageToPacket(response, 0, IpAddress(9, 9, 9, 9), 53,
                      IpAddress(10, 0, 0, 2), 5555, Protocol::kUdp);
  auto message = PacketToMessage(packet);
  ASSERT_TRUE(message.ok());
  EXPECT_TRUE(message->qr);
  ASSERT_EQ(message->answers.size(), 1u);
  // A response must not parse as a query.
  EXPECT_FALSE(PacketToQuery(packet).ok());
}

TEST(Pcap, RejectsGarbage) {
  Bytes garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(ReadPcap(garbage).ok());
}

TEST(TraceStats, ComputesTableOneColumns) {
  std::vector<QueryRecord> records;
  for (int i = 0; i < 100; ++i) {
    QueryRecord r = SampleRecord();
    r.timestamp = static_cast<NanoTime>(i) * Millis(10);  // 10ms apart
    r.src = IpAddress(172, 16, 0, static_cast<uint8_t>(i % 10));
    r.do_bit = i % 2 == 0;
    r.protocol = i % 25 == 0 ? Protocol::kTcp : Protocol::kUdp;
    records.push_back(r);
  }
  TraceStats stats = ComputeTraceStats(records);
  EXPECT_EQ(stats.records, 100u);
  EXPECT_EQ(stats.unique_clients, 10u);
  EXPECT_NEAR(stats.interarrival_mean_s, 0.010, 1e-9);
  EXPECT_NEAR(stats.interarrival_stddev_s, 0.0, 1e-9);
  EXPECT_NEAR(stats.fraction_do, 0.5, 1e-9);
  EXPECT_NEAR(stats.fraction_tcp, 0.04, 1e-9);
  EXPECT_EQ(stats.duration, Millis(990));
}

TEST(TraceStats, EmptyAndSingle) {
  EXPECT_EQ(ComputeTraceStats({}).records, 0u);
  TraceStats one = ComputeTraceStats({SampleRecord()});
  EXPECT_EQ(one.records, 1u);
  EXPECT_EQ(one.unique_clients, 1u);
  EXPECT_EQ(one.duration, 0);
}

}  // namespace
}  // namespace ldp::trace
