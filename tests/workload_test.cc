#include <gtest/gtest.h>

#include <algorithm>

#include "trace/tracestats.h"
#include "workload/hierarchy.h"
#include "workload/sampling.h"
#include "workload/traces.h"
#include "zone/lookup.h"

namespace ldp::workload {
namespace {

TEST(Sampling, DiscreteSamplerMatchesWeights) {
  auto sampler = DiscreteSampler::Build({1.0, 3.0, 6.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(11);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler->Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Sampling, DiscreteSamplerRejectsBadWeights) {
  EXPECT_FALSE(DiscreteSampler::Build({}).ok());
  EXPECT_FALSE(DiscreteSampler::Build({0.0, 0.0}).ok());
  EXPECT_FALSE(DiscreteSampler::Build({1.0, -1.0}).ok());
}

TEST(Sampling, ZipfHeadDominates) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(5);
  size_t top10 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(rng) < 10) ++top10;
  }
  // Harmonic: top 10 of 1000 at s=1 hold ~39% of mass.
  EXPECT_GT(top10 / static_cast<double>(n), 0.3);
}

TEST(Sampling, HeavyTailHitsShareTarget) {
  auto weights = HeavyTailClientWeights(20000, 0.01, 0.75, 42);
  ASSERT_EQ(weights.size(), 20000u);
  std::vector<double> sorted = weights;
  std::sort(sorted.rbegin(), sorted.rend());
  double total = 0, top = 0;
  for (double w : sorted) total += w;
  for (size_t i = 0; i < 200; ++i) top += sorted[i];
  // Pareto sampling is noisy; the share should be in the right region.
  EXPECT_GT(top / total, 0.5);
}

TEST(Hierarchy, BuildsConsistentDelegations) {
  HierarchyConfig config;
  config.n_tlds = 3;
  config.n_slds_per_tld = 2;
  Hierarchy h = BuildHierarchy(config);

  ASSERT_NE(h.root, nullptr);
  EXPECT_TRUE(h.root->Validate().ok());
  EXPECT_EQ(h.tlds.size(), 3u);
  EXPECT_EQ(h.slds.size(), 6u);
  EXPECT_EQ(h.AllZones().size(), 10u);

  // Every TLD is delegated from the root with glue.
  for (const auto& tld : h.tlds) {
    EXPECT_TRUE(tld->Validate().ok());
    auto result =
        zone::Lookup(*h.root, *tld->origin().Child("x"), dns::RRType::kA);
    EXPECT_EQ(result.outcome, zone::LookupOutcome::kDelegation)
        << tld->origin().ToString();
    EXPECT_FALSE(result.additional.empty());  // glue present
  }
  // Every SLD validates and has hostnames recorded.
  for (const auto& sld : h.slds) EXPECT_TRUE(sld->Validate().ok());
  EXPECT_EQ(h.hostnames.size(), 6u * config.n_hosts_per_sld);

  // Address book is consistent both ways.
  for (const auto& [origin, addrs] : h.nameservers) {
    for (const auto& addr : addrs) {
      auto it = h.address_to_zone.find(addr);
      ASSERT_NE(it, h.address_to_zone.end());
      EXPECT_EQ(it->second, origin);
    }
  }
}

TEST(Hierarchy, SignedRootHasDnssec) {
  Hierarchy h = BuildRootHierarchy(5, /*sign=*/true, zone::DnssecConfig{});
  EXPECT_NE(h.root->FindRRset(dns::Name::Root(), dns::RRType::kDNSKEY),
            nullptr);
  EXPECT_NE(h.root->FindRRset(dns::Name::Root(), dns::RRType::kRRSIG),
            nullptr);
}

TEST(Hierarchy, Deterministic) {
  HierarchyConfig config;
  config.n_tlds = 2;
  config.n_slds_per_tld = 1;
  Hierarchy a = BuildHierarchy(config);
  Hierarchy b = BuildHierarchy(config);
  EXPECT_EQ(a.root->record_count(), b.root->record_count());
  EXPECT_EQ(a.nameservers, b.nameservers);
}

TEST(Traces, FixedIntervalMatchesTableOne) {
  // syn-2 from Table 1: 0.01 s inter-arrival, 60 min, 360 k records.
  FixedIntervalConfig config;
  config.interarrival = Millis(10);
  config.duration = Seconds(3600);
  auto records = MakeFixedIntervalTrace(config);
  EXPECT_EQ(records.size(), 360000u);

  auto stats = trace::ComputeTraceStats(records);
  EXPECT_NEAR(stats.interarrival_mean_s, 0.01, 1e-9);
  EXPECT_NEAR(stats.interarrival_stddev_s, 0.0, 1e-9);

  // Unique names per query (paper: to match queries with responses).
  std::set<std::string> names;
  for (size_t i = 0; i < 1000; ++i) {
    names.insert(records[i].qname.CanonicalKey());
  }
  EXPECT_EQ(names.size(), 1000u);
}

TEST(Traces, BRootModelShape) {
  BRootConfig config;
  config.median_rate_qps = 1000;
  config.duration = Seconds(30);
  config.n_clients = 5000;
  auto records = MakeBRootTrace(config);
  ASSERT_GT(records.size(), 25000u);
  ASSERT_LT(records.size(), 40000u);

  auto stats = trace::ComputeTraceStats(records);
  EXPECT_NEAR(stats.fraction_do, 0.723, 0.03);
  EXPECT_NEAR(stats.fraction_tcp, 0.03, 0.01);
  EXPECT_GT(stats.unique_clients, 1000u);

  // Timestamps ascend.
  for (size_t i = 1; i < records.size(); ++i) {
    ASSERT_GE(records[i].timestamp, records[i - 1].timestamp);
  }
}

TEST(Traces, BRootClientSkew) {
  BRootConfig config;
  config.median_rate_qps = 2000;
  config.duration = Seconds(30);
  config.n_clients = 10000;
  auto records = MakeBRootTrace(config);

  std::unordered_map<IpAddress, size_t> loads;
  for (const auto& r : records) ++loads[r.src];
  std::vector<size_t> counts;
  counts.reserve(loads.size());
  for (const auto& [src, count] : loads) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());

  size_t total = records.size();
  size_t top_1pct = 0;
  size_t top_n = std::max<size_t>(1, counts.size() / 100);
  for (size_t i = 0; i < top_n; ++i) top_1pct += counts[i];
  // Paper §5.2.4: ~1% of clients contribute ~3/4 of the load. The synthetic
  // model should land in heavy-tail territory (> 40% here).
  EXPECT_GT(static_cast<double>(top_1pct) / total, 0.4);

  // Majority of clients are quiet (<10 queries; paper: 81%).
  size_t quiet = 0;
  for (size_t c : counts) quiet += c < 10 ? 1 : 0;
  EXPECT_GT(static_cast<double>(quiet) / counts.size(), 0.6);
}

TEST(Traces, BRootDeterministic) {
  BRootConfig config;
  config.duration = Seconds(5);
  auto a = MakeBRootTrace(config);
  auto b = MakeBRootTrace(config);
  EXPECT_EQ(a, b);
}

TEST(Traces, RecursiveTraceUsesHierarchyNames) {
  HierarchyConfig hconfig;
  hconfig.n_tlds = 3;
  hconfig.n_slds_per_tld = 5;
  Hierarchy h = BuildHierarchy(hconfig);

  RecConfig config;
  config.n_records = 2000;
  auto records = MakeRecursiveTrace(config, h);
  ASSERT_EQ(records.size(), 2000u);

  auto stats = trace::ComputeTraceStats(records);
  EXPECT_LE(stats.unique_clients, config.n_clients);
  EXPECT_NEAR(stats.interarrival_mean_s, 0.18, 0.02);
  for (const auto& r : records) {
    EXPECT_TRUE(r.rd);  // stub queries request recursion
  }
  // All names exist in the hierarchy.
  std::set<std::string> known;
  for (const auto& name : h.hostnames) known.insert(name.CanonicalKey());
  for (const auto& r : records) {
    ASSERT_TRUE(known.count(r.qname.CanonicalKey())) << r.qname.ToString();
  }
}

}  // namespace
}  // namespace ldp::workload
