#include <gtest/gtest.h>

#include "common/strings.h"
#include "zone/dnssec.h"
#include "zone/lookup.h"
#include "zone/masterfile.h"
#include "zone/view.h"
#include "zone/zone.h"

namespace ldp::zone {
namespace {

using dns::Name;
using dns::RRType;

// Splits rdata text on whitespace but keeps "quoted strings" together.
std::vector<std::string> TokenizeRdata(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == ' ' || text[i] == '\t') { ++i; continue; }
    std::string token;
    if (text[i] == '"') {
      token.push_back(text[i++]);
      while (i < text.size() && text[i] != '"') token.push_back(text[i++]);
      if (i < text.size()) token.push_back(text[i++]);
    } else {
      while (i < text.size() && text[i] != ' ' && text[i] != '\t') {
        token.push_back(text[i++]);
      }
    }
    out.push_back(std::move(token));
  }
  return out;
}

dns::ResourceRecord Rec(const char* name, RRType type, const char* rdata_text,
                        uint32_t ttl = 3600) {
  auto parts = TokenizeRdata(rdata_text);
  std::vector<std::string_view> tokens(parts.begin(), parts.end());
  auto rdata = dns::RdataFromText(type, tokens);
  EXPECT_TRUE(rdata.ok()) << rdata_text;
  return dns::ResourceRecord{*Name::Parse(name), type, dns::RRClass::kIN, ttl,
                             std::move(*rdata)};
}

// example.com zone with a delegation, wildcard, CNAME, and glue.
Zone MakeExampleZone() {
  Zone zone(*Name::Parse("example.com"));
  EXPECT_TRUE(zone.AddRecord(Rec("example.com", RRType::kSOA,
                                 "ns1.example.com. admin.example.com. "
                                 "1 7200 3600 1209600 300"))
                  .ok());
  EXPECT_TRUE(
      zone.AddRecord(Rec("example.com", RRType::kNS, "ns1.example.com.")).ok());
  EXPECT_TRUE(
      zone.AddRecord(Rec("example.com", RRType::kNS, "ns2.example.com.")).ok());
  EXPECT_TRUE(zone.AddRecord(Rec("ns1.example.com", RRType::kA, "192.0.2.53")).ok());
  EXPECT_TRUE(zone.AddRecord(Rec("ns2.example.com", RRType::kA, "192.0.2.54")).ok());
  EXPECT_TRUE(zone.AddRecord(Rec("www.example.com", RRType::kA, "192.0.2.1")).ok());
  EXPECT_TRUE(zone.AddRecord(Rec("www.example.com", RRType::kA, "192.0.2.2")).ok());
  EXPECT_TRUE(zone.AddRecord(
      Rec("alias.example.com", RRType::kCNAME, "www.example.com.")).ok());
  EXPECT_TRUE(zone.AddRecord(
      Rec("external.example.com", RRType::kCNAME, "www.other.net.")).ok());
  EXPECT_TRUE(zone.AddRecord(Rec("*.wild.example.com", RRType::kTXT,
                                 "\"wildcard data\"")).ok());
  // Delegation of sub.example.com with in-zone glue.
  EXPECT_TRUE(zone.AddRecord(
      Rec("sub.example.com", RRType::kNS, "ns.sub.example.com.")).ok());
  EXPECT_TRUE(
      zone.AddRecord(Rec("ns.sub.example.com", RRType::kA, "192.0.2.100")).ok());
  // Name under a deep path, making b.deep.example.com an empty non-terminal.
  EXPECT_TRUE(zone.AddRecord(
      Rec("a.b.deep.example.com", RRType::kA, "192.0.2.200")).ok());
  EXPECT_TRUE(zone.AddRecord(Rec("example.com", RRType::kMX,
                                 "10 mail.example.com.")).ok());
  EXPECT_TRUE(zone.AddRecord(Rec("mail.example.com", RRType::kA,
                                 "192.0.2.25")).ok());
  return zone;
}

TEST(Zone, BasicProperties) {
  Zone zone = MakeExampleZone();
  EXPECT_TRUE(zone.Validate().ok());
  EXPECT_EQ(zone.origin().ToString(), "example.com.");
  EXPECT_NE(zone.Soa(), nullptr);
  EXPECT_NE(zone.ApexNs(), nullptr);
  EXPECT_EQ(zone.ApexNs()->size(), 2u);
  EXPECT_GT(zone.MemoryFootprint(), 0u);
}

TEST(Zone, DuplicateRdataIgnored) {
  Zone zone = MakeExampleZone();
  size_t before = zone.record_count();
  EXPECT_TRUE(zone.AddRecord(Rec("www.example.com", RRType::kA,
                                 "192.0.2.1")).ok());
  EXPECT_EQ(zone.record_count(), before);
}

TEST(Zone, RejectsOutOfZoneRecord) {
  Zone zone = MakeExampleZone();
  EXPECT_FALSE(zone.AddRecord(Rec("www.other.net", RRType::kA,
                                  "192.0.2.9")).ok());
}

TEST(Zone, EmptyNonTerminal) {
  Zone zone = MakeExampleZone();
  EXPECT_TRUE(zone.IsEmptyNonTerminal(*Name::Parse("b.deep.example.com")));
  EXPECT_TRUE(zone.IsEmptyNonTerminal(*Name::Parse("deep.example.com")));
  EXPECT_FALSE(zone.IsEmptyNonTerminal(*Name::Parse("a.b.deep.example.com")));
  EXPECT_FALSE(zone.IsEmptyNonTerminal(*Name::Parse("nothere.example.com")));
}

TEST(Zone, DelegationPoints) {
  Zone zone = MakeExampleZone();
  auto cuts = zone.DelegationPoints();
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0].ToString(), "sub.example.com.");
}

TEST(Lookup, ExactMatch) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("www.example.com"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kAnswer);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].size(), 2u);
  EXPECT_FALSE(result.wildcard);
}

TEST(Lookup, NoData) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("www.example.com"), RRType::kAAAA);
  EXPECT_EQ(result.outcome, LookupOutcome::kNoData);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, RRType::kSOA);
}

TEST(Lookup, NxDomain) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("missing.example.com"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kNxDomain);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, RRType::kSOA);
}

TEST(Lookup, EmptyNonTerminalIsNoData) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("b.deep.example.com"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kNoData);
}

TEST(Lookup, CnameChaseInZone) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("alias.example.com"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kCname);
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_EQ(result.answers[0].type, RRType::kCNAME);
  EXPECT_EQ(result.answers[1].type, RRType::kA);
  EXPECT_EQ(result.answers[1].name.ToString(), "www.example.com.");
}

TEST(Lookup, CnameToExternalTarget) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("external.example.com"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kCname);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].type, RRType::kCNAME);
}

TEST(Lookup, CnameQueryReturnsCnameItself) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("alias.example.com"), RRType::kCNAME);
  EXPECT_EQ(result.outcome, LookupOutcome::kAnswer);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].type, RRType::kCNAME);
}

TEST(Lookup, CnameLoopTerminates) {
  Zone zone(*Name::Parse("loop.test"));
  ASSERT_TRUE(zone.AddRecord(Rec("loop.test", RRType::kSOA,
                                 "ns.loop.test. a.loop.test. 1 2 3 4 5")).ok());
  ASSERT_TRUE(zone.AddRecord(Rec("loop.test", RRType::kNS, "ns.loop.test.")).ok());
  ASSERT_TRUE(zone.AddRecord(Rec("a.loop.test", RRType::kCNAME, "b.loop.test.")).ok());
  ASSERT_TRUE(zone.AddRecord(Rec("b.loop.test", RRType::kCNAME, "a.loop.test.")).ok());
  auto result = Lookup(zone, *Name::Parse("a.loop.test"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kCname);
  EXPECT_EQ(result.answers.size(), 2u);
}

TEST(Lookup, Wildcard) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("anything.wild.example.com"),
                       RRType::kTXT);
  EXPECT_EQ(result.outcome, LookupOutcome::kAnswer);
  EXPECT_TRUE(result.wildcard);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].name.ToString(), "anything.wild.example.com.");
}

TEST(Lookup, WildcardNoDataForOtherType) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("anything.wild.example.com"),
                       RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kNoData);
  EXPECT_TRUE(result.wildcard);
}

TEST(Lookup, WildcardDoesNotApplyToExistingName) {
  Zone zone = MakeExampleZone();
  // *.wild.example.com exists as a node; an exact query for a sibling that
  // exists must not wildcard-expand. Add an explicit sibling:
  ASSERT_TRUE(zone.AddRecord(Rec("real.wild.example.com", RRType::kA,
                                 "192.0.2.77")).ok());
  auto result = Lookup(zone, *Name::Parse("real.wild.example.com"),
                       RRType::kTXT);
  EXPECT_EQ(result.outcome, LookupOutcome::kNoData);
  EXPECT_FALSE(result.wildcard);
}

TEST(Lookup, Delegation) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("host.sub.example.com"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kDelegation);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, RRType::kNS);
  // Glue for ns.sub.example.com.
  ASSERT_EQ(result.additional.size(), 1u);
  EXPECT_EQ(result.additional[0].name.ToString(), "ns.sub.example.com.");
}

TEST(Lookup, DelegationAtCutItself) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("sub.example.com"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kDelegation);
}

TEST(Lookup, DsAtCutAnsweredFromParent) {
  Zone zone = MakeExampleZone();
  ASSERT_TRUE(zone.AddRecord(Rec("sub.example.com", RRType::kDS,
                                 "12345 8 2 aabbccdd")).ok());
  auto result = Lookup(zone, *Name::Parse("sub.example.com"), RRType::kDS);
  EXPECT_EQ(result.outcome, LookupOutcome::kAnswer);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].type, RRType::kDS);
}

TEST(Lookup, NotInZone) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("www.other.net"), RRType::kA);
  EXPECT_EQ(result.outcome, LookupOutcome::kNotInZone);
}

TEST(Lookup, AnyQuery) {
  Zone zone = MakeExampleZone();
  auto result = Lookup(zone, *Name::Parse("example.com"), RRType::kANY);
  EXPECT_EQ(result.outcome, LookupOutcome::kAnswer);
  EXPECT_GE(result.answers.size(), 3u);  // SOA, NS, MX
}

TEST(BuildResponse, PositiveAnswer) {
  Zone zone = MakeExampleZone();
  auto query = dns::Message::MakeQuery(*Name::Parse("www.example.com"),
                                       RRType::kA, false);
  query.id = 42;
  auto response = BuildResponse(zone, query, false);
  EXPECT_EQ(response.id, 42);
  EXPECT_TRUE(response.qr);
  EXPECT_TRUE(response.aa);
  EXPECT_EQ(response.rcode, dns::Rcode::kNoError);
  EXPECT_EQ(response.answers.size(), 2u);
}

TEST(BuildResponse, MxAdditionalProcessing) {
  Zone zone = MakeExampleZone();
  auto query = dns::Message::MakeQuery(*Name::Parse("example.com"),
                                       RRType::kMX, false);
  auto response = BuildResponse(zone, query, false);
  ASSERT_EQ(response.answers.size(), 1u);
  ASSERT_EQ(response.additionals.size(), 1u);
  EXPECT_EQ(response.additionals[0].name.ToString(), "mail.example.com.");
}

TEST(BuildResponse, NxDomainRcode) {
  Zone zone = MakeExampleZone();
  auto query = dns::Message::MakeQuery(*Name::Parse("nope.example.com"),
                                       RRType::kA, false);
  auto response = BuildResponse(zone, query, false);
  EXPECT_EQ(response.rcode, dns::Rcode::kNxDomain);
  ASSERT_EQ(response.authorities.size(), 1u);
  EXPECT_EQ(response.authorities[0].type, RRType::kSOA);
}

TEST(BuildResponse, RefusedOutOfZone) {
  Zone zone = MakeExampleZone();
  auto query = dns::Message::MakeQuery(*Name::Parse("www.other.net"),
                                       RRType::kA, false);
  auto response = BuildResponse(zone, query, false);
  EXPECT_EQ(response.rcode, dns::Rcode::kRefused);
}

TEST(BuildResponse, ReferralNotAuthoritative) {
  Zone zone = MakeExampleZone();
  auto query = dns::Message::MakeQuery(*Name::Parse("x.sub.example.com"),
                                       RRType::kA, false);
  auto response = BuildResponse(zone, query, false);
  EXPECT_FALSE(response.aa);
  EXPECT_EQ(response.rcode, dns::Rcode::kNoError);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_FALSE(response.authorities.empty());
}

TEST(Dnssec, SignAddsRecords) {
  Zone zone = MakeExampleZone();
  size_t before = zone.record_count();
  ASSERT_TRUE(SignZone(zone, DnssecConfig{}).ok());
  EXPECT_GT(zone.record_count(), before);
  EXPECT_NE(zone.FindRRset(zone.origin(), RRType::kDNSKEY), nullptr);
  EXPECT_NE(zone.FindRRset(zone.origin(), RRType::kNSEC), nullptr);
  EXPECT_NE(zone.FindRRset(zone.origin(), RRType::kRRSIG), nullptr);
  // Signing twice is an error.
  EXPECT_FALSE(SignZone(zone, DnssecConfig{}).ok());
}

TEST(Dnssec, GlueAndDelegationNsUnsigned) {
  Zone zone = MakeExampleZone();
  ASSERT_TRUE(SignZone(zone, DnssecConfig{}).ok());
  // Glue below the cut carries no RRSIG or NSEC.
  EXPECT_EQ(zone.FindRRset(*Name::Parse("ns.sub.example.com"), RRType::kRRSIG),
            nullptr);
  // The cut node has NSEC (parent-side) but no RRSIG covering NS.
  const dns::RRset* cut_sigs =
      zone.FindRRset(*Name::Parse("sub.example.com"), RRType::kRRSIG);
  ASSERT_NE(cut_sigs, nullptr);
  for (const auto& rdata : cut_sigs->rdatas) {
    const auto& sig = std::get<dns::RrsigRdata>(rdata);
    EXPECT_NE(sig.type_covered, RRType::kNS);
  }
}

TEST(Dnssec, SignatureSizeTracksZskBits) {
  Zone zone1024 = MakeExampleZone();
  ASSERT_TRUE(SignZone(zone1024, DnssecConfig{.zsk_bits = 1024}).ok());
  Zone zone2048 = MakeExampleZone();
  ASSERT_TRUE(SignZone(zone2048, DnssecConfig{.zsk_bits = 2048}).ok());

  auto sig_size = [](const Zone& zone) {
    const dns::RRset* sigs =
        zone.FindRRset(*Name::Parse("www.example.com"), RRType::kRRSIG);
    EXPECT_NE(sigs, nullptr);
    return std::get<dns::RrsigRdata>(sigs->rdatas[0]).signature.size();
  };
  EXPECT_EQ(sig_size(zone1024), 128u);
  EXPECT_EQ(sig_size(zone2048), 256u);
}

TEST(Dnssec, RolloverDoublesSignatures) {
  Zone normal = MakeExampleZone();
  ASSERT_TRUE(SignZone(normal, DnssecConfig{}).ok());
  Zone rollover = MakeExampleZone();
  ASSERT_TRUE(SignZone(rollover, DnssecConfig{.zsk_rollover = true}).ok());

  auto count_sigs = [](const Zone& zone) {
    const dns::RRset* sigs =
        zone.FindRRset(*Name::Parse("www.example.com"), RRType::kRRSIG);
    if (sigs == nullptr) return size_t{0};
    size_t covering_a = 0;
    for (const auto& rdata : sigs->rdatas) {
      if (std::get<dns::RrsigRdata>(rdata).type_covered == RRType::kA) {
        ++covering_a;
      }
    }
    return covering_a;
  };
  EXPECT_EQ(count_sigs(normal), 1u);
  EXPECT_EQ(count_sigs(rollover), 2u);
  // And an extra DNSKEY.
  EXPECT_EQ(rollover.FindRRset(rollover.origin(), RRType::kDNSKEY)->size(),
            normal.FindRRset(normal.origin(), RRType::kDNSKEY)->size() + 1);
}

TEST(BuildResponse, DnssecAnswersIncludeSigs) {
  Zone zone = MakeExampleZone();
  ASSERT_TRUE(SignZone(zone, DnssecConfig{}).ok());
  auto query = dns::Message::MakeQuery(*Name::Parse("www.example.com"),
                                       RRType::kA, false);
  query.edns = dns::Edns{.do_bit = true};

  auto with = BuildResponse(zone, query, true);
  bool has_sig = false;
  for (const auto& rr : with.answers) {
    if (rr.type == RRType::kRRSIG) has_sig = true;
  }
  EXPECT_TRUE(has_sig);

  auto without = BuildResponse(zone, query, false);
  for (const auto& rr : without.answers) {
    EXPECT_NE(rr.type, RRType::kRRSIG);
  }
  EXPECT_GT(with.Encode().size(), without.Encode().size());
}

TEST(BuildResponse, DnssecNxDomainIncludesNsec) {
  Zone zone = MakeExampleZone();
  ASSERT_TRUE(SignZone(zone, DnssecConfig{}).ok());
  auto query = dns::Message::MakeQuery(*Name::Parse("qqq.example.com"),
                                       RRType::kA, false);
  query.edns = dns::Edns{.do_bit = true};
  auto response = BuildResponse(zone, query, true);
  EXPECT_EQ(response.rcode, dns::Rcode::kNxDomain);
  bool has_nsec = false, has_sig = false;
  for (const auto& rr : response.authorities) {
    if (rr.type == RRType::kNSEC) has_nsec = true;
    if (rr.type == RRType::kRRSIG) has_sig = true;
  }
  EXPECT_TRUE(has_nsec);
  EXPECT_TRUE(has_sig);
}

TEST(BuildResponse, WildcardDnssecSignaturesRelocated) {
  Zone zone = MakeExampleZone();
  ASSERT_TRUE(SignZone(zone, DnssecConfig{}).ok());
  auto query = dns::Message::MakeQuery(
      *Name::Parse("something.wild.example.com"), RRType::kTXT, false);
  auto response = BuildResponse(zone, query, true);
  bool found = false;
  for (const auto& rr : response.answers) {
    if (rr.type == RRType::kRRSIG) {
      EXPECT_EQ(rr.name.ToString(), "something.wild.example.com.");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MasterFile, ParseBasicZone) {
  const char* text = R"(
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1 admin 1 7200 3600 1209600 300
    IN NS  ns1
    IN NS  ns2.example.com.
ns1 IN A   192.0.2.53
ns2 300 IN A 192.0.2.54
www IN A   192.0.2.1
    IN A   192.0.2.2
txt IN TXT "hello world" "second string"
mx  IN MX  10 mail
)";
  auto zone = ParseMasterFile(text, MasterFileOptions{});
  ASSERT_TRUE(zone.ok()) << zone.error().ToString();
  EXPECT_EQ(zone->origin().ToString(), "example.com.");
  EXPECT_TRUE(zone->Validate().ok());
  auto* www = zone->FindRRset(*Name::Parse("www.example.com"), RRType::kA);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->size(), 2u);
  auto* ns2 = zone->FindRRset(*Name::Parse("ns2.example.com"), RRType::kA);
  ASSERT_NE(ns2, nullptr);
  EXPECT_EQ(ns2->ttl, 300u);
  auto* txt = zone->FindRRset(*Name::Parse("txt.example.com"), RRType::kTXT);
  ASSERT_NE(txt, nullptr);
  auto& strings = std::get<dns::TxtRdata>(txt->rdatas[0]).strings;
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "hello world");
  auto* mx = zone->FindRRset(*Name::Parse("mx.example.com"), RRType::kMX);
  ASSERT_NE(mx, nullptr);
  EXPECT_EQ(std::get<dns::MxRdata>(mx->rdatas[0]).exchange.ToString(),
            "mail.example.com.");
}

TEST(MasterFile, ParenthesesContinuation) {
  const char* text =
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1.example.com. admin.example.com. (\n"
      "      2024010101 ; serial\n"
      "      7200       ; refresh\n"
      "      3600 1209600 300 )\n"
      "@ IN NS ns1.example.com.\n";
  auto zone = ParseMasterFile(text, MasterFileOptions{});
  ASSERT_TRUE(zone.ok()) << zone.error().ToString();
  auto* soa = zone->Soa();
  ASSERT_NE(soa, nullptr);
  EXPECT_EQ(std::get<dns::SoaRdata>(soa->rdatas[0]).serial, 2024010101u);
}

TEST(MasterFile, CommentsAndBlankLines) {
  const char* text =
      "; leading comment\n"
      "$ORIGIN t.\n"
      "\n"
      "@ IN SOA ns.t. a.t. 1 2 3 4 5 ; trailing comment\n"
      "@ IN NS ns.t.\n"
      "ns IN A 10.0.0.1\n";
  auto zone = ParseMasterFile(text, MasterFileOptions{});
  ASSERT_TRUE(zone.ok()) << zone.error().ToString();
  EXPECT_EQ(zone->record_count(), 3u);
}

TEST(MasterFile, ErrorsSurfaceContext) {
  EXPECT_FALSE(ParseMasterFile("", MasterFileOptions{}).ok());
  EXPECT_FALSE(
      ParseMasterFile("www IN A not-an-ip\n",
                      MasterFileOptions{.default_origin = *Name::Parse("t.")})
          .ok());
  EXPECT_FALSE(
      ParseMasterFile("$BOGUS x\n@ IN A 1.2.3.4\n", MasterFileOptions{}).ok());
}

TEST(MasterFile, SerializeRoundTrip) {
  Zone zone = MakeExampleZone();
  ASSERT_TRUE(SignZone(zone, DnssecConfig{}).ok());
  std::string text = SerializeZone(zone);
  auto reparsed = ParseMasterFile(text, MasterFileOptions{});
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToString();
  EXPECT_EQ(reparsed->record_count(), zone.record_count());
  EXPECT_EQ(reparsed->node_count(), zone.node_count());
  // Spot-check an RRSIG survives intact.
  auto* sigs = reparsed->FindRRset(*Name::Parse("www.example.com"),
                                   RRType::kRRSIG);
  ASSERT_NE(sigs, nullptr);
  auto* orig = zone.FindRRset(*Name::Parse("www.example.com"), RRType::kRRSIG);
  EXPECT_EQ(*sigs, *orig);
}

TEST(ZoneSet, LongestMatchWins) {
  ZoneSet set;
  auto root = std::make_shared<Zone>(Name::Root());
  auto com = std::make_shared<Zone>(*Name::Parse("com"));
  auto example = std::make_shared<Zone>(*Name::Parse("example.com"));
  ASSERT_TRUE(set.AddZone(root).ok());
  ASSERT_TRUE(set.AddZone(com).ok());
  ASSERT_TRUE(set.AddZone(example).ok());
  EXPECT_EQ(set.FindBestZone(*Name::Parse("www.example.com")), example.get());
  EXPECT_EQ(set.FindBestZone(*Name::Parse("other.com")), com.get());
  EXPECT_EQ(set.FindBestZone(*Name::Parse("www.net")), root.get());
  EXPECT_EQ(set.zone_count(), 3u);
  EXPECT_FALSE(set.AddZone(com).ok());  // duplicate origin
}

TEST(ZoneSet, EmptySetFindsNothing) {
  ZoneSet set;
  EXPECT_EQ(set.FindBestZone(*Name::Parse("a.b")), nullptr);
}

TEST(ViewTable, SourceAddressSelectsView) {
  ViewTable table;
  ZoneSet root_set, com_set;
  ASSERT_TRUE(root_set.AddZone(std::make_shared<Zone>(Name::Root())).ok());
  ASSERT_TRUE(
      com_set.AddZone(std::make_shared<Zone>(*Name::Parse("com"))).ok());

  // Root servers' public addresses select the root view.
  ASSERT_TRUE(table
                  .AddView("root", {IpAddress(198, 41, 0, 4),
                                    IpAddress(192, 228, 79, 201)},
                           std::move(root_set))
                  .ok());
  ASSERT_TRUE(table
                  .AddView("com", {IpAddress(192, 5, 6, 30)},
                           std::move(com_set))
                  .ok());

  const ZoneSet* root_match = table.Match(IpAddress(198, 41, 0, 4));
  ASSERT_NE(root_match, nullptr);
  EXPECT_NE(root_match->FindBestZone(*Name::Parse("anything.test")), nullptr);

  const ZoneSet* com_match = table.Match(IpAddress(192, 5, 6, 30));
  ASSERT_NE(com_match, nullptr);
  EXPECT_EQ(com_match->FindBestZone(*Name::Parse("example.com"))->origin(),
            *Name::Parse("com"));

  // Unknown source falls through to the (empty) default view.
  const ZoneSet* fallback = table.Match(IpAddress(10, 9, 9, 9));
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->zone_count(), 0u);
}

TEST(ViewTable, RejectsAmbiguousSource) {
  ViewTable table;
  ZoneSet a, b;
  ASSERT_TRUE(a.AddZone(std::make_shared<Zone>(*Name::Parse("a"))).ok());
  ASSERT_TRUE(b.AddZone(std::make_shared<Zone>(*Name::Parse("b"))).ok());
  ASSERT_TRUE(
      table.AddView("a", {IpAddress(10, 0, 0, 1)}, std::move(a)).ok());
  EXPECT_FALSE(
      table.AddView("b", {IpAddress(10, 0, 0, 1)}, std::move(b)).ok());
}

// --- adversarial master-file inputs (fuzz_zone regression targets) ---

TEST(MasterFileAdversarial, TrailingBackslashAtEndOfLine) {
  auto zone = ParseMasterFile(
      "$ORIGIN example.com.\n@ IN SOA ns1 root 1 2 3 4 5\n"
      "www IN A 192.0.2.1\\\n",
      {});
  ASSERT_FALSE(zone.ok());
  EXPECT_EQ(zone.error().code(), ErrorCode::kParseError);
}

TEST(MasterFileAdversarial, UnterminatedQuotedString) {
  auto zone = ParseMasterFile(
      "$ORIGIN example.com.\n@ IN SOA ns1 root 1 2 3 4 5\n"
      "t IN TXT \"no closing quote\n",
      {});
  ASSERT_FALSE(zone.ok());
  EXPECT_EQ(zone.error().code(), ErrorCode::kParseError);
}

TEST(MasterFileAdversarial, BackslashAtEndOfQuotedString) {
  auto zone = ParseMasterFile("t IN TXT \"dangling\\\n", {});
  ASSERT_FALSE(zone.ok());
  EXPECT_EQ(zone.error().code(), ErrorCode::kParseError);
}

TEST(MasterFileAdversarial, DirectiveWithJunkArguments) {
  EXPECT_FALSE(ParseMasterFile("$ORIGIN one two\n", {}).ok());
  EXPECT_FALSE(ParseMasterFile("$TTL soon\n@ IN A 192.0.2.1\n", {}).ok());
  EXPECT_FALSE(ParseMasterFile("$GENERATE 1-10 host$ A 192.0.2.$\n", {}).ok());
}

TEST(MasterFileAdversarial, TtlOverflowRejected) {
  auto by_directive = ParseMasterFile(
      "$TTL 4294967296\n$ORIGIN example.com.\n@ IN A 192.0.2.1\n", {});
  ASSERT_FALSE(by_directive.ok());
  EXPECT_EQ(by_directive.error().code(), ErrorCode::kOutOfRange);

  auto by_record = ParseMasterFile(
      "$ORIGIN example.com.\n@ 4294967296 IN A 192.0.2.1\n", {});
  ASSERT_FALSE(by_record.ok());
  EXPECT_EQ(by_record.error().code(), ErrorCode::kOutOfRange);
}

TEST(MasterFileAdversarial, OversizedTokenRejected) {
  std::string text = "$ORIGIN example.com.\n@ IN TXT \"";
  text.append(300 * 1024, 'x');
  text += "\"\n";
  auto zone = ParseMasterFile(text, {});
  ASSERT_FALSE(zone.ok());
  EXPECT_EQ(zone.error().code(), ErrorCode::kParseError);
}

// Regression (found by fuzz_zone): an owner label "$" serialized bare and
// the reparse rejected the line as an unknown $-directive. Serialized
// names must re-tokenize as exactly one name token.
TEST(MasterFileAdversarial, DollarOwnerRoundTrips) {
  auto zone = ParseMasterFile("$ IN CNAME mp\n", {});
  ASSERT_TRUE(zone.ok()) << zone.error().ToString();
  std::string first = SerializeZone(*zone);
  auto reparsed = ParseMasterFile(first, {});
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToString();
  EXPECT_EQ(SerializeZone(*reparsed), first);
}

}  // namespace
}  // namespace ldp::zone
