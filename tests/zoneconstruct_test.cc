// Zone construction (§2.3): harvest a simulated Internet through a cold
// recursive, rebuild zones, then prove the rebuilt zones answer a replayed
// workload identically to the originals ("repeatability").
#include <gtest/gtest.h>

#include "proxy/proxy.h"
#include "resolver/resolver.h"
#include "server/sim_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"
#include "zoneconstruct/harvest.h"

namespace ldp::zoneconstruct {
namespace {

workload::Hierarchy MakeInternet() {
  workload::HierarchyConfig config;
  config.n_tlds = 3;
  config.n_slds_per_tld = 4;
  return workload::BuildHierarchy(config);
}

std::vector<trace::QueryRecord> MakeTrace(const workload::Hierarchy& internet,
                                          size_t n) {
  workload::RecConfig config;
  config.n_records = n;
  config.mean_interarrival_s = 0.01;
  return workload::MakeRecursiveTrace(config, internet);
}

TEST(ZoneConstruct, HarvestRebuildsServableZones) {
  auto internet = MakeInternet();
  auto queries = MakeTrace(internet, 600);

  auto outcome = HarvestZonesFromTrace(queries, internet);
  ASSERT_TRUE(outcome.ok()) << outcome.error().ToString();
  EXPECT_GT(outcome->unique_queries, 0u);
  EXPECT_EQ(outcome->failed, 0u);
  EXPECT_GT(outcome->construction.responses_harvested, 0u);

  // Root + all touched TLDs + touched SLDs rebuilt and valid.
  const auto& zones = outcome->construction.zones;
  ASSERT_GE(zones.size(), 3u);
  bool has_root = false;
  for (const auto& zone : zones) {
    EXPECT_TRUE(zone->Validate().ok()) << zone->origin().ToString();
    if (zone->origin().IsRoot()) has_root = true;
    // Every zone has nameserver addresses for its view.
    auto it = outcome->construction.zone_nameservers.find(zone->origin());
    ASSERT_NE(it, outcome->construction.zone_nameservers.end());
    EXPECT_FALSE(it->second.empty());
  }
  EXPECT_TRUE(has_root);
  // SOA never appears in normal referral traffic below the root; most
  // reconstructed zones need a synthesized one.
  EXPECT_GT(outcome->construction.soa_synthesized, 0u);
}

TEST(ZoneConstruct, RebuiltZonesAnswerReplayIdentically) {
  auto internet = MakeInternet();
  auto queries = MakeTrace(internet, 500);

  auto outcome = HarvestZonesFromTrace(queries, internet);
  ASSERT_TRUE(outcome.ok()) << outcome.error().ToString();

  // World A: original hierarchy. World B: reconstructed zones on a
  // meta-DNS-server behind proxies. Replay the same queries cold in both.
  struct World {
    sim::Simulator sim;
    std::unique_ptr<sim::SimNetwork> net;
    std::vector<std::unique_ptr<server::SimDnsServer>> servers;
    std::unique_ptr<server::SimDnsServer> meta;
    std::unique_ptr<resolver::SimResolver> resolver;
    std::unique_ptr<proxy::RecursiveProxy> rproxy;
    std::unique_ptr<proxy::AuthoritativeProxy> aproxy;
  };

  World original;
  original.net = std::make_unique<sim::SimNetwork>(original.sim);
  for (const auto& [address, origin] : internet.address_to_zone) {
    zone::ZoneSet set;
    for (const auto& zone : internet.AllZones()) {
      if (zone->origin() == origin) {
        ASSERT_TRUE(set.AddZone(zone).ok());
        break;
      }
    }
    original.servers.push_back(server::MakeAuthoritativeNode(
        *original.net, address, std::move(set)));
  }
  resolver::ResolverConfig rconfig;
  rconfig.address = IpAddress(10, 0, 0, 2);
  rconfig.root_hints = internet.nameservers.at(dns::Name::Root());
  original.resolver =
      std::make_unique<resolver::SimResolver>(*original.net, rconfig);
  ASSERT_TRUE(original.resolver->Start().ok());

  World rebuilt;
  rebuilt.net = std::make_unique<sim::SimNetwork>(rebuilt.sim);
  auto views = outcome->construction.BuildViews();
  ASSERT_TRUE(views.ok()) << views.error().ToString();
  auto engine =
      std::make_shared<server::AuthServerEngine>(std::move(*views));
  server::SimDnsServer::Config sconfig;
  sconfig.address = IpAddress(10, 0, 0, 50);
  rebuilt.meta = std::make_unique<server::SimDnsServer>(*rebuilt.net, engine,
                                                        sconfig);
  ASSERT_TRUE(rebuilt.meta->Start().ok());
  rebuilt.resolver =
      std::make_unique<resolver::SimResolver>(*rebuilt.net, rconfig);
  ASSERT_TRUE(rebuilt.resolver->Start().ok());
  rebuilt.rproxy = std::make_unique<proxy::RecursiveProxy>(
      *rebuilt.net, rconfig.address, sconfig.address);
  rebuilt.aproxy = std::make_unique<proxy::AuthoritativeProxy>(
      *rebuilt.net, sconfig.address, rconfig.address);

  auto resolve = [](World& world, const dns::Name& name, dns::RRType type) {
    std::optional<dns::Message> result;
    world.resolver->Resolve(name, type, [&](const dns::Message& response) {
      result = response;
    });
    world.sim.Run();
    EXPECT_TRUE(result.has_value());
    return result.value_or(dns::Message{});
  };

  size_t compared = 0;
  std::set<std::string> seen;
  for (const auto& record : queries) {
    if (compared >= 60) break;
    if (!seen.insert(record.qname.CanonicalKey() + "/" +
                     dns::RRTypeToString(record.qtype))
             .second) {
      continue;
    }
    auto a = resolve(original, record.qname, record.qtype);
    auto b = resolve(rebuilt, record.qname, record.qtype);
    if (!a.answers.empty()) {
      // Positive answers must reproduce exactly.
      EXPECT_EQ(a.rcode, b.rcode) << record.qname.ToString();
      EXPECT_EQ(a.answers, b.answers) << record.qname.ToString();
    } else {
      // Negative answers stay negative, but reconstruction cannot always
      // distinguish NODATA from NXDOMAIN: a NODATA response carries no
      // record at the queried name, so nothing recreates the (empty) node
      // (paper §2.3: zones rebuilt from responses are complete only for
      // what the trace exercised).
      EXPECT_TRUE(b.answers.empty()) << record.qname.ToString();
      EXPECT_TRUE(b.rcode == dns::Rcode::kNoError ||
                  b.rcode == dns::Rcode::kNxDomain)
          << record.qname.ToString();
    }
    ++compared;
  }
  EXPECT_GT(compared, 10u);
}

TEST(ZoneConstruct, ZonesSurviveMasterFileRoundTrip) {
  // The paper's zones are *files* reused across experiments: reconstructed
  // zones must serialize and reload losslessly.
  auto internet = MakeInternet();
  auto queries = MakeTrace(internet, 300);
  auto outcome = HarvestZonesFromTrace(queries, internet);
  ASSERT_TRUE(outcome.ok());

  for (const auto& zone : outcome->construction.zones) {
    std::string text = zone::SerializeZone(*zone);
    auto reloaded = zone::ParseMasterFile(text, zone::MasterFileOptions{});
    ASSERT_TRUE(reloaded.ok())
        << zone->origin().ToString() << ": " << reloaded.error().ToString();
    EXPECT_EQ(reloaded->record_count(), zone->record_count())
        << zone->origin().ToString();
  }
}

TEST(ZoneConstruct, FirstAnswerWinsOnConflicts) {
  ZoneConstructor constructor;
  IpAddress server(198, 51, 100, 1);

  auto make_response = [&](const char* name, IpAddress addr) {
    dns::Message response;
    response.qr = true;
    response.aa = true;
    response.answers.push_back(dns::ResourceRecord{
        *dns::Name::Parse(name), dns::RRType::kA, dns::RRClass::kIN, 60,
        dns::ARdata{addr}});
    response.authorities.push_back(dns::ResourceRecord{
        *dns::Name::Parse("cdn.test"), dns::RRType::kNS, dns::RRClass::kIN,
        3600, dns::NsRdata{*dns::Name::Parse("ns1.cdn.test")}});
    response.additionals.push_back(dns::ResourceRecord{
        *dns::Name::Parse("ns1.cdn.test"), dns::RRType::kA, dns::RRClass::kIN,
        3600, dns::ARdata{server}});
    return response;
  };

  // A CDN-style flapping answer: same name, different A across responses.
  constructor.AddResponse(server, make_response("www.cdn.test",
                                                IpAddress(1, 1, 1, 1)));
  constructor.AddResponse(server, make_response("www.cdn.test",
                                                IpAddress(2, 2, 2, 2)));
  auto result = constructor.Build();
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->conflicts_dropped, 1u);

  const zone::Zone* cdn = nullptr;
  for (const auto& zone : result->zones) {
    if (zone->origin() == *dns::Name::Parse("cdn.test")) cdn = zone.get();
  }
  ASSERT_NE(cdn, nullptr);
  const dns::RRset* www =
      cdn->FindRRset(*dns::Name::Parse("www.cdn.test"), dns::RRType::kA);
  ASSERT_NE(www, nullptr);
  ASSERT_EQ(www->size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(www->rdatas[0]).address,
            IpAddress(1, 1, 1, 1));
}

TEST(ZoneConstruct, EmptyInputFails) {
  ZoneConstructor constructor;
  EXPECT_FALSE(constructor.Build().ok());
}

}  // namespace
}  // namespace ldp::zoneconstruct
