// Shared --datapath flag handling for the socket tools (ldp_serve,
// ldp_proxy, ldp_replay): parse the backend selection plus the afpacket
// knobs, and probe the afpacket backend up front so a missing capability
// fails at startup with an actionable message, not deep inside a bind.
#ifndef LDPLAYER_TOOLS_DATAPATH_FLAGS_H
#define LDPLAYER_TOOLS_DATAPATH_FLAGS_H

#include <string>

#include "common/flags.h"
#include "net/datapath.h"

namespace ldp::tools {

// Usage block the tools splice into their kUsage text; the verify.sh docs
// stage cross-checks these flag names against EXPERIMENTS.md.
constexpr const char* kDatapathUsage =
    R"(  --datapath MODE          how datagrams reach the engine: epoll (kernel
                           sockets, default) or afpacket (AF_PACKET mmap
                           rings; needs CAP_NET_RAW)
  --afpacket-if IFACE      interface for afpacket rings (lo)
  --afpacket-peer-mac MAC  destination MAC when unlearned (aa:bb:..:ff;
                           default: learned per peer, else broadcast))";

struct DatapathFlags {
  net::DatapathKind kind = net::DatapathKind::kEpoll;
  net::AfPacketOptions afpacket;
};

inline Result<DatapathFlags> ParseDatapathFlags(const Flags& flags) {
  DatapathFlags out;
  LDP_ASSIGN_OR_RETURN(
      out.kind, net::ParseDatapathKind(flags.GetString("datapath", "epoll")));
  out.afpacket.interface = flags.GetString("afpacket-if", "lo");
  out.afpacket.peer_mac = flags.GetString("afpacket-peer-mac", "");
  if (out.kind == net::DatapathKind::kAfPacket) {
    LDP_RETURN_IF_ERROR(net::ProbeAfPacket(out.afpacket));
  }
  return out;
}

}  // namespace ldp::tools

#endif  // LDPLAYER_TOOLS_DATAPATH_FLAGS_H
