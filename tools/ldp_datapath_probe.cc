// ldp_datapath_probe: answers "can the afpacket datapath run here?" (and,
// with --tls, "does this build speak TLS?") for scripts. Exit 0 and print
// "ok" when the probed capability is usable; exit 1 and print the reason
// otherwise (missing CAP_NET_RAW, no such interface, kernel without
// TPACKET_V3/V2 rings, a build without OpenSSL). verify.sh and the benches
// use this to detect-and-skip honestly instead of failing.
//
//   ldp_datapath_probe [--afpacket-if IFACE] [--afpacket-peer-mac MAC]
//   ldp_datapath_probe --tls
#include <cstdio>

#include "common/flags.h"
#include "net/datapath.h"
#include "net/tls.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_datapath_probe [options]
  --afpacket-if IFACE      interface to probe (lo)
  --afpacket-peer-mac MAC  peer MAC to validate (optional)
  --tls                    probe the TLS transport instead of afpacket
Prints "ok" and exits 0 when the probed capability is usable.)";

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"tls"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown({"afpacket-if", "afpacket-peer-mac",
                                   "tls", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  if (flags.GetBool("tls", false)) {
    if (!net::TlsAvailable()) {
      std::printf("built without OpenSSL (no TLS)\n");
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }

  net::AfPacketOptions options;
  options.interface = flags.GetString("afpacket-if", "lo");
  options.peer_mac = flags.GetString("afpacket-peer-mac", "");
  auto status = net::ProbeAfPacket(options);
  if (!status.ok()) {
    std::printf("%s\n", status.error().ToString().c_str());
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
