// ldp-make-workload: generate synthetic DNS workloads calibrated to the
// paper's trace inventory (Table 1).
//
//   ldp_make_workload --model broot --rate 3800 --duration 60 --out t.bin
//   ldp_make_workload --model fixed --interarrival-us 1000 --duration 60 \
//       --out syn3.txt
//   ldp_make_workload --model recursive --records 20000 --out rec.bin
#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "trace/binary.h"
#include "trace/text.h"
#include "trace/tracestats.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_make_workload --model broot|fixed|recursive --out FILE
  common:     [--duration SECONDS] [--seed N] [--server IP]
  broot:      [--rate QPS] [--clients N] [--do-fraction F] [--tcp-fraction F]
              [--nxdomain-fraction F] [--tlds N]
  fixed:      [--interarrival-us MICROS] [--clients N]
  recursive:  [--records N] [--interarrival-s SECONDS] [--clients N]
              [--tlds N] [--slds N]
Output format by extension: .txt (editable) or .bin (replay input).)";

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv);
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown(
          {"model", "out", "duration", "seed", "server", "rate", "clients",
           "do-fraction", "tcp-fraction", "nxdomain-fraction", "tlds",
           "interarrival-us", "records", "interarrival-s", "slds", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  std::string model = flags.GetString("model", "");
  std::string out = flags.GetString("out", "");
  if (model.empty() || out.empty() || flags.GetBool("help", false)) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto geti = [&](const char* key, int64_t fallback) {
    return flags.GetInt(key, fallback).value_or(fallback);
  };
  auto getd = [&](const char* key, double fallback) {
    return flags.GetDouble(key, fallback).value_or(fallback);
  };
  auto server = IpAddress::Parse(flags.GetString("server", "10.0.0.1"));
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().ToString().c_str());
    return 2;
  }

  std::vector<trace::QueryRecord> records;
  if (model == "broot") {
    workload::BRootConfig config;
    config.median_rate_qps = getd("rate", 3800);
    config.duration = Seconds(geti("duration", 60));
    config.n_clients = static_cast<size_t>(geti("clients", 20000));
    config.do_fraction = getd("do-fraction", config.do_fraction);
    config.tcp_fraction = getd("tcp-fraction", config.tcp_fraction);
    config.nxdomain_fraction =
        getd("nxdomain-fraction", config.nxdomain_fraction);
    config.n_tlds = static_cast<size_t>(geti("tlds", 100));
    config.seed = static_cast<uint64_t>(geti("seed", 1));
    config.server = *server;
    records = workload::MakeBRootTrace(config);
  } else if (model == "fixed") {
    workload::FixedIntervalConfig config;
    config.interarrival = Micros(geti("interarrival-us", 1000));
    config.duration = Seconds(geti("duration", 60));
    config.n_clients = static_cast<size_t>(geti("clients", 10000));
    config.seed = static_cast<uint64_t>(geti("seed", 7));
    config.server = *server;
    records = workload::MakeFixedIntervalTrace(config);
  } else if (model == "recursive") {
    workload::HierarchyConfig hconfig;
    hconfig.n_tlds = static_cast<size_t>(geti("tlds", 20));
    hconfig.n_slds_per_tld = static_cast<size_t>(geti("slds", 27));
    auto hierarchy = workload::BuildHierarchy(hconfig);
    workload::RecConfig config;
    config.n_records = static_cast<size_t>(geti("records", 20000));
    config.mean_interarrival_s = getd("interarrival-s", 0.18);
    config.n_clients = static_cast<size_t>(geti("clients", 91));
    config.seed = static_cast<uint64_t>(geti("seed", 17));
    config.server = *server;
    records = workload::MakeRecursiveTrace(config, hierarchy);
  } else {
    std::fprintf(stderr, "unknown --model %s\n%s\n", model.c_str(), kUsage);
    return 2;
  }

  Status saved = EndsWith(out, ".txt")
                     ? trace::WriteTextTraceFile(records, out)
                     : trace::WriteBinaryTraceFile(records, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.error().ToString().c_str());
    return 1;
  }
  auto stats = trace::ComputeTraceStats(records);
  std::printf("%zu queries -> %s\n", records.size(), out.c_str());
  std::printf("duration %.1fs, %zu clients, mean rate %.0f q/s, "
              "ia %.6f+-%.6fs, DO %.1f%%, TCP %.1f%%\n",
              ToSeconds(stats.duration), stats.unique_clients,
              stats.mean_rate_qps, stats.interarrival_mean_s,
              stats.interarrival_stddev_s, 100 * stats.fraction_do,
              100 * stats.fraction_tcp);
  return 0;
}
