// ldp-mutate: apply what-if mutations to a trace (paper §2.5) — the CLI
// face of the query mutator.
//
//   ldp_mutate --in t.bin --out t-tcp.bin --force-protocol tcp
//   ldp_mutate --in t.txt --out t-do.txt  --do-fraction 1.0
//   ldp_mutate --in t.bin --out t-2x.bin  --time-scale 0.5 --sample 0.5
#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "mutate/attack.h"
#include "mutate/mutate.h"
#include "trace/binary.h"
#include "trace/text.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_mutate --in FILE --out FILE [passes...]
  --force-protocol udp|tcp|tls   rewrite every query's transport
  --do-fraction F                set DO bit on fraction F of queries
  --edns-size N                  force EDNS payload size
  --unique-prefix STR            prepend "<STR><index>." to each qname
  --time-scale F                 multiply timestamps (0.5 = double rate)
  --time-shift-s S               add S seconds to timestamps
  --rebase                       shift so the first query is at t=0
  --sample F                     keep a deterministic fraction F
  --keep-protocol udp|tcp|tls    drop queries on other transports
Attack overlay (after the passes; see src/mutate/attack.h):
  --attack KIND                  overlay nxdomain|amplification|spoofed
  --attack-qps N                 attack rate, queries/sec (1000)
  --attack-duration-s S          attack length, seconds (trace span or 10)
  --attack-server IP             victim address (default: first record's dst)
  --attack-base NAME             zone under attack (default: root)
  --attack-seed N                attack RNG seed (0xa77ac)
Passes apply in the order listed above; --sample 0 --attack KIND emits an
attack-only trace. Formats by extension (.txt/.bin).)";

Result<std::vector<trace::QueryRecord>> Load(const std::string& path) {
  if (EndsWith(path, ".txt")) return trace::ReadTextTraceFile(path);
  LDP_ASSIGN_OR_RETURN(auto reader, trace::BinaryTraceReader::Open(path));
  std::vector<trace::QueryRecord> records;
  while (!reader.AtEnd()) {
    LDP_ASSIGN_OR_RETURN(auto record, reader.Next());
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"rebase"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown(
          {"in", "out", "force-protocol", "do-fraction", "edns-size",
           "unique-prefix", "time-scale", "time-shift-s", "rebase", "sample",
           "keep-protocol", "seed", "attack", "attack-qps",
           "attack-duration-s", "attack-server", "attack-base",
           "attack-seed", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("in") || !flags.Has("out")) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto records = Load(flags.GetString("in", ""));
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.error().ToString().c_str());
    return 1;
  }
  size_t before = records->size();
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 0x5a).value_or(0x5a));

  mutate::MutationPipeline pipeline;
  if (flags.Has("keep-protocol")) {
    auto protocol =
        trace::ProtocolFromString(flags.GetString("keep-protocol", ""));
    if (!protocol.ok()) {
      std::fprintf(stderr, "%s\n", protocol.error().ToString().c_str());
      return 2;
    }
    pipeline.Add(mutate::KeepOnlyProtocol(*protocol));
  }
  if (flags.Has("force-protocol")) {
    auto protocol =
        trace::ProtocolFromString(flags.GetString("force-protocol", ""));
    if (!protocol.ok()) {
      std::fprintf(stderr, "%s\n", protocol.error().ToString().c_str());
      return 2;
    }
    pipeline.Add(mutate::ForceProtocol(*protocol));
  }
  if (flags.Has("do-fraction")) {
    pipeline.Add(mutate::SetDnssecOk(
        flags.GetDouble("do-fraction", 1.0).value_or(1.0), seed));
  }
  if (flags.Has("edns-size")) {
    pipeline.Add(mutate::SetEdnsSize(static_cast<uint16_t>(
        flags.GetInt("edns-size", 4096).value_or(4096))));
  }
  if (flags.Has("unique-prefix")) {
    pipeline.Add(
        mutate::PrependUniqueLabel(flags.GetString("unique-prefix", "r")));
  }
  if (flags.Has("time-scale")) {
    pipeline.Add(
        mutate::TimeScale(flags.GetDouble("time-scale", 1.0).value_or(1.0)));
  }
  if (flags.Has("time-shift-s")) {
    pipeline.Add(mutate::TimeShift(
        SecondsF(flags.GetDouble("time-shift-s", 0).value_or(0))));
  }
  if (flags.GetBool("rebase", false) && !records->empty()) {
    pipeline.Add(mutate::RebaseToZero(records->front().timestamp));
  }
  if (flags.Has("sample")) {
    pipeline.Add(
        mutate::Sample(flags.GetDouble("sample", 1.0).value_or(1.0), seed));
  }
  if (pipeline.pass_count() == 0 && !flags.Has("attack")) {
    std::fprintf(stderr, "no mutation passes given\n%s\n", kUsage);
    return 2;
  }
  // `--sample 0 --attack KIND` empties the trace before the attack block
  // runs, but the attack should still default its victim and window to the
  // input it was shaped against — keep the pre-mutation endpoints.
  const bool had_input = !records->empty();
  trace::QueryRecord input_front;
  trace::QueryRecord input_back;
  if (had_input) {
    input_front = records->front();
    input_back = records->back();
  }
  pipeline.Apply(*records);

  // Attack overlay: generated against the (already-mutated) trace and
  // merged by timestamp, so `--sample 0 --attack KIND` yields a pure
  // attack trace and any other combination rides alongside the original
  // queries.
  size_t attack_count = 0;
  if (flags.Has("attack")) {
    auto kind = mutate::AttackKindFromString(flags.GetString("attack", ""));
    if (!kind.ok()) {
      std::fprintf(stderr, "--attack: %s\n", kind.error().ToString().c_str());
      return 2;
    }
    mutate::AttackConfig attack_config;
    attack_config.kind = *kind;
    attack_config.rate_qps = flags.GetDouble("attack-qps", 1000).value_or(1000);
    // Default the attack window to the trace span, so the overlay covers
    // the legitimate traffic it is meant to degrade. Fall back to the
    // pre-mutation span when sampling dropped every record.
    const trace::QueryRecord* front =
        !records->empty() ? &records->front() : (had_input ? &input_front : nullptr);
    const trace::QueryRecord* back =
        !records->empty() ? &records->back() : (had_input ? &input_back : nullptr);
    double span_s =
        front ? ToSeconds(back->timestamp - front->timestamp) : 10.0;
    if (span_s <= 0) span_s = 10.0;
    attack_config.duration = SecondsF(
        flags.GetDouble("attack-duration-s", span_s).value_or(span_s));
    attack_config.start = front ? front->timestamp : 0;
    if (flags.Has("attack-server")) {
      auto server = IpAddress::Parse(flags.GetString("attack-server", ""));
      if (!server.ok()) {
        std::fprintf(stderr, "--attack-server: %s\n",
                     server.error().ToString().c_str());
        return 2;
      }
      attack_config.server = *server;
    } else if (front) {
      attack_config.server = front->dst;
    }
    if (flags.Has("attack-base")) {
      auto base = dns::Name::Parse(flags.GetString("attack-base", "."));
      if (!base.ok()) {
        std::fprintf(stderr, "--attack-base: %s\n",
                     base.error().ToString().c_str());
        return 2;
      }
      attack_config.apex = *base;
    }
    attack_config.seed = static_cast<uint64_t>(
        flags.GetInt("attack-seed", 0xa77ac).value_or(0xa77ac));
    if (attack_config.rate_qps <= 0 || attack_config.duration <= 0) {
      std::fprintf(stderr, "--attack-qps/--attack-duration-s must be > 0\n");
      return 2;
    }
    auto attack = mutate::MakeAttackTrace(attack_config);
    attack_count = attack.size();
    mutate::OverlayAttack(*records, std::move(attack));
  }

  std::string out = flags.GetString("out", "");
  Status saved = EndsWith(out, ".txt")
                     ? trace::WriteTextTraceFile(*records, out)
                     : trace::WriteBinaryTraceFile(*records, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.error().ToString().c_str());
    return 1;
  }
  if (attack_count > 0) {
    std::printf("%zu -> %zu queries through %zu passes "
                "(+%zu %s attack) -> %s\n",
                before, records->size(), pipeline.pass_count(), attack_count,
                flags.GetString("attack", "").c_str(), out.c_str());
  } else {
    std::printf("%zu -> %zu queries through %zu passes -> %s\n", before,
                records->size(), pipeline.pass_count(), out.c_str());
  }
  return 0;
}
