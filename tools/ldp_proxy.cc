// ldp_proxy: real-socket hierarchy-emulation proxy (paper §2.4). Binds
// every emulated nameserver address (from a views manifest or an explicit
// list), rewrites queries toward the meta server with the OQDA as their
// source, and relays replies back — the loopback stand-in for the paper's
// TUN/iptables capture. See src/proxy/relay.h and DESIGN.md.
//
//   ldp_proxy --meta 127.0.0.1:5353 --views hierarchy/views.txt --port 5454
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "net/event_loop.h"
#include "proxy/relay.h"
#include "stats/metrics.h"
#include "datapath_flags.h"
#include "zone/manifest.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_proxy --meta IP:PORT --views MANIFEST [options]
       ldp_proxy --meta IP:PORT --addresses A,B,... [options]
  --meta IP:PORT           the meta-DNS-server queries are rewritten toward
  --views FILE             emulate every view source address in this manifest
  --addresses A,B,...      emulate an explicit comma-separated address list
  --loopback-alias         remap emulated addresses into 127/8 (LoopbackAlias)
                           so they are bindable without interface config
  --port N                 shared service port across all addresses
                           (0 = ephemeral; the resolved port is printed)
  --threads N              relay shards, SO_REUSEPORT (1)
  --flow-capacity N        flow-table entries per shard before LRU (4096)
  --flow-idle-timeout-s N  expire idle flows after N seconds (30)
  --flow-linger-ms N       draining window for late replies, ms (1000)
  --no-tcp                 UDP only (no TCP splice)
  --sites NAME:RTT,...     emulate anycast sites (e.g. lax:0,ams:80); each
                           site delays UDP replies by RTT ms and counts its
                           load under proxy.site.NAME.* metrics
  --catchment FILE         client-prefix -> site map ("route P/LEN SITE",
                           "default SITE" lines); requires --sites
  --udp-rcvbuf-bytes N     SO_RCVBUF per relay listener (0 = kernel default)
  --datapath MODE          epoll listeners per address (default) or one
                           wildcard afpacket ring per shard
  --afpacket-if IFACE      interface for afpacket rings (lo)
  --afpacket-peer-mac MAC  afpacket fallback destination MAC
  --stats-interval-s N     print relay stats every N seconds (10; 0=off)
  --metrics-out FILE       append JSONL metric snapshots to FILE
  --metrics-interval-ms N  snapshot cadence in milliseconds (1000)
Relays until interrupted.)";

net::EventLoop* g_loop = nullptr;

// RequestStop is an eventfd write: async-signal-safe, unlike Stop().
void HandleSignal(int) {
  if (g_loop != nullptr) g_loop->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"loopback-alias", "no-tcp"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown(
          {"meta", "views", "addresses", "loopback-alias", "port", "threads",
           "flow-capacity", "flow-idle-timeout-s", "flow-linger-ms", "no-tcp",
           "sites", "catchment", "udp-rcvbuf-bytes", "datapath",
           "afpacket-if", "afpacket-peer-mac", "stats-interval-s",
           "metrics-out", "metrics-interval-ms", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  std::string views_path = flags.GetString("views", "");
  std::string addresses_arg = flags.GetString("addresses", "");
  if (flags.GetBool("help", false) || !flags.Has("meta") ||
      (views_path.empty() == addresses_arg.empty())) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto meta = Endpoint::Parse(flags.GetString("meta", ""));
  if (!meta.ok()) {
    std::fprintf(stderr, "--meta: %s\n", meta.error().ToString().c_str());
    return 2;
  }

  std::vector<IpAddress> addresses;
  if (!views_path.empty()) {
    auto manifest = zone::LoadViewManifest(views_path);
    if (!manifest.ok()) {
      std::fprintf(stderr, "%s\n", manifest.error().ToString().c_str());
      return 1;
    }
    addresses = zone::ManifestSources(*manifest);
  } else {
    size_t start = 0;
    while (start <= addresses_arg.size()) {
      size_t comma = addresses_arg.find(',', start);
      std::string token = addresses_arg.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      start = comma == std::string::npos ? addresses_arg.size() + 1
                                         : comma + 1;
      if (token.empty()) continue;
      auto addr = IpAddress::Parse(token);
      if (!addr.ok()) {
        std::fprintf(stderr, "--addresses: %s\n",
                     addr.error().ToString().c_str());
        return 2;
      }
      addresses.push_back(*addr);
    }
  }
  if (addresses.empty()) {
    std::fprintf(stderr, "no addresses to emulate\n");
    return 1;
  }
  if (flags.GetBool("loopback-alias", false)) {
    for (auto& addr : addresses) addr = LoopbackAlias(addr);
  }

  auto port = flags.GetInt("port", 0);
  auto threads = flags.GetInt("threads", 1);
  auto flow_capacity = flags.GetInt("flow-capacity", 4096);
  auto rcvbuf = flags.GetInt("udp-rcvbuf-bytes", 0);
  if (!port.ok() || *port < 0 || *port > 65535 || !threads.ok() ||
      *threads < 1 || !flow_capacity.ok() || *flow_capacity < 1 ||
      !rcvbuf.ok() || *rcvbuf < 0) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }
  auto datapath = tools::ParseDatapathFlags(flags);
  if (!datapath.ok()) {
    std::fprintf(stderr, "%s\n", datapath.error().ToString().c_str());
    return 1;
  }

  auto loop = net::EventLoop::Create();
  if (!loop.ok()) {
    std::fprintf(stderr, "%s\n", loop.error().ToString().c_str());
    return 1;
  }
  g_loop = loop->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Registry before the proxy: polled-counter lambdas registered by the
  // relay must stay callable for the final snapshot after Stop().
  stats::MetricsRegistry metrics;
  std::string metrics_out = flags.GetString("metrics-out", "");
  int64_t metrics_interval_ms =
      flags.GetInt("metrics-interval-ms", 1000).value_or(1000);
  std::unique_ptr<stats::MetricsSnapshotter> snapshotter;
  if (!metrics_out.empty()) {
    stats::MetricsSnapshotter::Options opts;
    opts.path = metrics_out;
    opts.interval = Millis(metrics_interval_ms > 0 ? metrics_interval_ms
                                                   : 1000);
    snapshotter = std::make_unique<stats::MetricsSnapshotter>(metrics, opts);
    if (auto s = snapshotter->Open(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
      return 1;
    }
  }

  proxy::RelayConfig config;
  config.addresses = addresses;
  config.port = static_cast<uint16_t>(*port);
  config.meta_server = *meta;
  config.n_shards = static_cast<size_t>(*threads);
  config.udp_recv_buffer_bytes = static_cast<int>(*rcvbuf);
  config.flow_capacity = static_cast<size_t>(*flow_capacity);
  config.flow_idle_timeout =
      Seconds(flags.GetInt("flow-idle-timeout-s", 30).value_or(30));
  config.flow_linger =
      Millis(flags.GetInt("flow-linger-ms", 1000).value_or(1000));
  config.splice_tcp = !flags.GetBool("no-tcp", false);
  if (flags.Has("sites")) {
    auto sites = proxy::ParseSiteSpecs(flags.GetString("sites", ""));
    if (!sites.ok()) {
      std::fprintf(stderr, "--sites: %s\n", sites.error().ToString().c_str());
      return 2;
    }
    config.sites = std::move(*sites);
    if (flags.Has("catchment")) {
      auto catchment = proxy::CatchmentMap::Load(
          flags.GetString("catchment", ""), config.sites);
      if (!catchment.ok()) {
        std::fprintf(stderr, "--catchment: %s\n",
                     catchment.error().ToString().c_str());
        return 2;
      }
      config.catchment = std::move(*catchment);
    }
  } else if (flags.Has("catchment")) {
    std::fprintf(stderr, "--catchment requires --sites\n");
    return 2;
  }
  config.datapath = datapath->kind;
  config.afpacket = datapath->afpacket;
  if (snapshotter != nullptr) config.metrics = &metrics;

  auto relay = proxy::HierarchyProxy::Start(config);
  if (!relay.ok()) {
    std::fprintf(stderr, "%s\n", relay.error().ToString().c_str());
    return 1;
  }
  std::printf("proxying %zu addresses on port %u -> meta %s "
              "(udp%s, %zu shard%s, datapath %s), ^C to stop\n",
              addresses.size(), (*relay)->port(),
              meta->ToString().c_str(), config.splice_tcp ? "+tcp" : "",
              (*relay)->n_shards(), (*relay)->n_shards() == 1 ? "" : "s",
              std::string(net::DatapathKindName(config.datapath)).c_str());
  if (!config.sites.empty()) {
    std::printf("anycast sites:");
    for (const auto& site : config.sites) {
      std::printf(" %s(rtt %.1fms)", site.name.c_str(), ToMillis(site.rtt));
    }
    std::printf(" — %zu catchment route%s\n", config.catchment.route_count(),
                config.catchment.route_count() == 1 ? "" : "s");
  }
  // The port line drives scripted runs (verify.sh parses it), so push it
  // out even when stdout is a pipe.
  std::fflush(stdout);

  int64_t stats_interval =
      flags.GetInt("stats-interval-s", 10).value_or(10);
  std::function<void()> print_stats = [&]() {
    proxy::RelayStats stats = (*relay)->TotalStats();
    std::printf("queries=%llu responses=%llu rewritten=%llu flows=%lld "
                "evicted=%llu expired=%llu evicted-drops=%llu "
                "tcp-queries=%llu tcp-reconnects=%llu\n",
                static_cast<unsigned long long>(stats.queries_in),
                static_cast<unsigned long long>(stats.responses_out),
                static_cast<unsigned long long>(stats.rewritten),
                static_cast<long long>(stats.active_flows),
                static_cast<unsigned long long>(stats.flows_evicted),
                static_cast<unsigned long long>(stats.flows_expired),
                static_cast<unsigned long long>(stats.evicted_drops),
                static_cast<unsigned long long>(stats.tcp_queries),
                static_cast<unsigned long long>(stats.tcp_reconnects));
    (*loop)->ScheduleAfter(Seconds(stats_interval), print_stats);
  };
  if (stats_interval > 0) {
    (*loop)->ScheduleAfter(Seconds(stats_interval), print_stats);
  }

  std::function<void()> write_snapshot = [&]() {
    snapshotter->WriteNow();
    (*loop)->ScheduleAfter(snapshotter->interval(), write_snapshot);
  };
  if (snapshotter != nullptr) {
    (*loop)->ScheduleAfter(snapshotter->interval(), write_snapshot);
  }

  (*loop)->Run();
  (*relay)->Stop();
  // Final row after the shards stopped: totals match the shutdown report.
  if (snapshotter != nullptr) snapshotter->WriteNow();
  proxy::RelayStats stats = (*relay)->TotalStats();
  std::printf("\nshutting down after %llu queries (%llu responses relayed)\n",
              static_cast<unsigned long long>(stats.queries_in),
              static_cast<unsigned long long>(stats.responses_out));
  for (const auto& site : stats.sites) {
    std::printf("site %s: queries=%llu responses=%llu\n", site.name.c_str(),
                static_cast<unsigned long long>(site.queries_in),
                static_cast<unsigned long long>(site.responses_out));
  }
  return 0;
}
