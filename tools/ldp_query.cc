// ldp-query: a dig-like DNS client over real sockets — the quickest way to
// poke at an ldp_serve instance (or any DNS server).
//
//   ldp_query --server 127.0.0.1:5353 www.example.com A
//   ldp_query --server 127.0.0.1:5353 --tcp --do example.com DNSKEY
#include <cstdio>

#include "common/flags.h"
#include "dns/framing.h"
#include "dns/message.h"
#include "net/sockets.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_query --server IP:PORT [--tcp] [--do] [--rd]
                 [--timeout-ms N] NAME [TYPE]
Sends one query and prints the response dig-style. TYPE defaults to A.)";

void PrintResponse(const dns::Message& response, NanoDuration elapsed,
                   size_t wire_size) {
  std::printf("%s", response.ToText().c_str());
  std::printf(";; %zu bytes, %.2f ms\n", wire_size, ToMillis(elapsed));
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"tcp", "do", "rd"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown(
          {"server", "tcp", "do", "rd", "timeout-ms", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("server") ||
      flags.positional().empty()) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto server = Endpoint::Parse(flags.GetString("server", ""));
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().ToString().c_str());
    return 2;
  }
  auto qname = dns::Name::Parse(flags.positional()[0]);
  if (!qname.ok()) {
    std::fprintf(stderr, "%s\n", qname.error().ToString().c_str());
    return 2;
  }
  dns::RRType qtype = dns::RRType::kA;
  if (flags.positional().size() > 1) {
    auto parsed = dns::RRTypeFromString(flags.positional()[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.error().ToString().c_str());
      return 2;
    }
    qtype = *parsed;
  }

  dns::Message query =
      dns::Message::MakeQuery(*qname, qtype, flags.GetBool("rd", false));
  query.id = static_cast<uint16_t>(MonotonicNow() & 0xffff);
  if (flags.GetBool("do", false)) {
    query.edns = dns::Edns{.udp_payload_size = 4096, .do_bit = true};
  }
  Bytes wire = query.Encode();

  auto loop = net::EventLoop::Create();
  if (!loop.ok()) return 1;
  NanoDuration timeout =
      Millis(flags.GetInt("timeout-ms", 3000).value_or(3000));
  NanoTime start = MonotonicNow();
  bool got_response = false;
  int exit_code = 1;

  auto handle_wire = [&](std::span<const uint8_t> payload) {
    auto response = dns::Message::Decode(payload);
    if (!response.ok() || response->id != query.id) return;
    got_response = true;
    PrintResponse(*response, MonotonicNow() - start, payload.size());
    exit_code = 0;
    (*loop)->Stop();
  };

  std::unique_ptr<net::UdpSocket> udp;
  std::unique_ptr<net::TcpConnection> tcp;
  if (flags.GetBool("tcp", false)) {
    auto assembler = std::make_shared<dns::StreamAssembler>();
    auto conn = net::TcpConnection::Connect(
        **loop, *server,
        [&](Status status) {
          if (!status.ok()) {
            std::fprintf(stderr, "%s\n", status.error().ToString().c_str());
            (*loop)->Stop();
            return;
          }
          auto framed = dns::FrameMessage(wire);
          if (!framed.ok()) {
            std::fprintf(stderr, "%s\n",
                         framed.error().ToString().c_str());
            (*loop)->Stop();
            return;
          }
          auto sent = tcp->Send(*framed);
          if (!sent.ok()) (*loop)->Stop();
        },
        [&, assembler](std::span<const uint8_t> data) {
          if (!assembler->Feed(data).ok()) return;
          if (auto message = assembler->NextMessage()) handle_wire(*message);
        },
        [&](Status) {
          if (!got_response) std::fprintf(stderr, ";; connection closed\n");
          (*loop)->Stop();
        });
    if (!conn.ok()) {
      std::fprintf(stderr, "%s\n", conn.error().ToString().c_str());
      return 1;
    }
    tcp = std::move(*conn);
  } else {
    auto socket = net::UdpSocket::Bind(
        **loop, Endpoint{IpAddress::Loopback(), 0},
        [&](std::span<const uint8_t> payload, Endpoint) {
          handle_wire(payload);
        });
    if (!socket.ok()) {
      std::fprintf(stderr, "%s\n", socket.error().ToString().c_str());
      return 1;
    }
    udp = std::move(*socket);
    if (auto s = udp->SendTo(wire, *server); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
      return 1;
    }
  }

  (*loop)->ScheduleAfter(timeout, [&]() {
    if (!got_response) std::fprintf(stderr, ";; timeout\n");
    (*loop)->Stop();
  });
  (*loop)->Run();
  return exit_code;
}
