// ldp-replay-agent: one distributed-replay worker process (paper §2.6).
// Listens for a controller (ldp_replay_trace --agents/--connect), receives
// its replay configuration and trace chunks over the wire protocol, runs
// the Distributor/Querier engine, and reports outcome accounting back.
//
//   ldp_replay_agent --listen 127.0.0.1:0 --metrics-out agent0.jsonl
//
// Prints "agent listening on IP:PORT" once bound (scripts parse it), then
// serves exactly one controller session and exits.
#include <cstdio>

#include "common/flags.h"
#include "distrib/agent.h"
#include "net/event_loop.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_replay_agent [options]
  --listen IP:PORT      bind address (127.0.0.1:0 = loopback ephemeral)
  --metrics-out FILE    append JSONL metric snapshots (with histogram
                        buckets, so per-agent files merge exactly)
  --max-outstanding N   cap queries fed into the engine but not yet at a
                        terminal outcome (16384)
Replay parameters (timing, timeouts, thread counts) arrive from the
controller's HELLO frame, not flags.)";

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown(
          {"listen", "metrics-out", "max-outstanding", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  distrib::AgentOptions options;
  std::string listen = flags.GetString("listen", "127.0.0.1:0");
  auto endpoint = Endpoint::Parse(listen);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "--listen: %s\n",
                 endpoint.error().ToString().c_str());
    return 2;
  }
  options.listen = *endpoint;
  options.metrics_path = flags.GetString("metrics-out", "");
  options.max_outstanding = static_cast<uint64_t>(
      flags.GetInt("max-outstanding", 16384).value_or(16384));

  auto loop = net::EventLoop::Create();
  if (!loop.ok()) {
    std::fprintf(stderr, "%s\n", loop.error().ToString().c_str());
    return 1;
  }
  auto agent = distrib::AgentServer::Start(**loop, options);
  if (!agent.ok()) {
    std::fprintf(stderr, "%s\n", agent.error().ToString().c_str());
    return 1;
  }
  std::printf("agent listening on %s\n",
              (*agent)->local().ToString().c_str());
  std::fflush(stdout);

  (*loop)->Run();

  const Status& result = (*agent)->result();
  if (!result.ok()) {
    std::fprintf(stderr, "agent failed: %s\n",
                 result.error().ToString().c_str());
    return 1;
  }
  return 0;
}
