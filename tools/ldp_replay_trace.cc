// ldp-replay: the distributed real-time query engine as a CLI — replays a
// trace file against a DNS server with the paper's timing algorithm, then
// reports fidelity statistics (Figs 6-8) and latency.
//
//   ldp_replay --trace t.bin --server 127.0.0.1:5353
//   ldp_replay --trace t.bin --server 127.0.0.1:5353 --fast --distributors 4
#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "replay/realtime.h"
#include "stats/summary.h"
#include "trace/binary.h"
#include "trace/text.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_replay --trace FILE --server IP:PORT [options]
  --distributors N      client-instance threads (2)
  --queriers N          logical queriers per distributor (3)
  --fast                ignore trace timing, send as fast as possible
  --rewrite-target      point every query at --server (default: on)
Trace format by extension (.txt/.bin).)";

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"fast", "rewrite-target"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown({"trace", "server", "distributors",
                                   "queriers", "fast", "rewrite-target",
                                   "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("trace") ||
      !flags.Has("server")) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto server = Endpoint::Parse(flags.GetString("server", ""));
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().ToString().c_str());
    return 2;
  }

  std::string path = flags.GetString("trace", "");
  Result<std::vector<trace::QueryRecord>> records =
      EndsWith(path, ".txt")
          ? trace::ReadTextTraceFile(path)
          : [&]() -> Result<std::vector<trace::QueryRecord>> {
              LDP_ASSIGN_OR_RETURN(auto reader,
                                   trace::BinaryTraceReader::Open(path));
              std::vector<trace::QueryRecord> out;
              while (!reader.AtEnd()) {
                LDP_ASSIGN_OR_RETURN(auto record, reader.Next());
                out.push_back(std::move(record));
              }
              return out;
            }();
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.error().ToString().c_str());
    return 1;
  }
  if (flags.GetBool("rewrite-target", true)) {
    for (auto& record : *records) {
      record.dst = server->addr;
      record.dst_port = server->port;
    }
  }

  replay::RealtimeConfig config;
  config.server = *server;
  config.n_distributors = static_cast<size_t>(
      flags.GetInt("distributors", 2).value_or(2));
  config.queriers_per_distributor =
      static_cast<size_t>(flags.GetInt("queriers", 3).value_or(3));
  config.fast_mode = flags.GetBool("fast", false);

  std::printf("replaying %zu queries against %s (%zu distributors x %zu "
              "queriers%s)...\n",
              records->size(), server->ToString().c_str(),
              config.n_distributors, config.queriers_per_distributor,
              config.fast_mode ? ", fast mode" : "");
  auto report = replay::RunRealtimeReplay(*records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.error().ToString().c_str());
    return 1;
  }

  std::printf("sent %llu, replied %llu (%.1f%%), wall %.2fs (%.1fk q/s)\n",
              static_cast<unsigned long long>(report->queries_sent),
              static_cast<unsigned long long>(report->replies),
              report->queries_sent
                  ? 100.0 * static_cast<double>(report->replies) /
                        static_cast<double>(report->queries_sent)
                  : 0,
              ToSeconds(report->wall_duration),
              static_cast<double>(report->queries_sent) /
                  ToSeconds(report->wall_duration) / 1000.0);

  if (!config.fast_mode) {
    stats::Summary timing;
    timing.AddAll(report->TimingErrorsMs(records->size() / 20));
    std::printf("timing error (ms):  %s\n",
                timing.Summarize().ToString(3).c_str());
    stats::Summary rate;
    for (double e : report->RateErrors()) rate.Add(100 * e);
    std::printf("rate error (%%):     %s\n",
                rate.Summarize().ToString(3).c_str());
  }
  stats::Summary latency;
  for (const auto& send : report->sends) {
    if (send.answered()) latency.Add(ToMillis(send.replied - send.sent));
  }
  if (!latency.empty()) {
    std::printf("query latency (ms): %s\n",
                latency.Summarize().ToString(3).c_str());
  }
  return 0;
}
