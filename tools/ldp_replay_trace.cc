// ldp-replay: the distributed real-time query engine as a CLI — replays a
// trace file against a DNS server with the paper's timing algorithm, then
// reports fidelity statistics (Figs 6-8) and latency.
//
//   ldp_replay --trace t.bin --server 127.0.0.1:5353
//   ldp_replay --trace t.bin --server 127.0.0.1:5353 --fast --distributors 4
#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "distrib/controller.h"
#include "distrib/spawn.h"
#include "net/tls.h"
#include "replay/realtime.h"
#include "stats/summary.h"
#include "datapath_flags.h"
#include "trace/binary.h"
#include "trace/text.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_replay --trace FILE --server IP:PORT [options]
  --distributors N      client-instance threads (2)
  --queriers N          logical queriers per distributor (3)
  --fast                ignore trace timing, send as fast as possible
  --rewrite-target      point every query at --server (default: on)
  --follow-dst          hierarchy mode: send each query to its trace
                        destination (the OQDA) instead of --server; use
                        with a hierarchy proxy listening on those addresses
  --dst-port N          with --follow-dst: send to this port instead of
                        each record's dst_port (the proxy's service port)
  --loopback-dst        with --follow-dst: remap destinations into 127/8
                        via LoopbackAlias (match the proxy's flag)
  --local-addr IP       bind querier sockets to this source address
                        (default 127.0.0.1); distinct 127.x.y.z values per
                        replay process give each client group its own
                        source prefix — what a proxy catchment map routes on
  --timeout-ms N        age out inflight queries after N ms (2000;
                        0 = legacy: loss is invisible, wait drain grace)
  --retransmits N       UDP retransmits before timing out, with
                        exponential backoff (0)
  --tcp-idle-timeout-ms N  close idle TCP connections after N ms (0 = keep)
  --tcp-reconnects N    reconnect budget per TCP connection (3)
  --tls                 replay every query over DNS-over-TLS (rewrites the
                        records' protocol to TLS; needs an OpenSSL build)
  --tls-port N          DoT port on the server (0 = the --server/record
                        port; ldp_serve --tls prints its "tls on" port)
  --datapath MODE       querier transport: epoll (default) or afpacket;
                        carried to agents in the HELLO frame, so spawned
                        and remote agents honor it too
  --afpacket-if IFACE   interface for afpacket rings (lo)
  --afpacket-peer-mac MAC  afpacket fallback destination MAC
  --metrics-out FILE    append JSONL metric snapshots to FILE during replay
                        (distributed: the merged all-agents stream)
  --metrics-interval-ms N  snapshot cadence in milliseconds (1000)
Distributed replay (paper §2.6 controller/agent split):
  --agents N            spawn N local ldp_replay_agent processes and run
                        the replay through them
  --connect LIST        comma-separated IP:PORT list of already-running
                        agents (multi-host; overrides --agents)
  --agent-bin PATH      agent binary for --agents (default: the
                        ldp_replay_agent next to this executable)
  --chunk N             trace records per wire chunk (512)
  --window N            un-acked chunk credit per agent (8)
Trace format by extension (.txt/.bin).)";

int RunDistributed(const Flags& flags,
                   const std::vector<trace::QueryRecord>& records,
                   const replay::RealtimeConfig& config, Endpoint server,
                   const std::string& metrics_out) {
  distrib::ControllerOptions options;
  options.config = config;
  options.config.metrics = nullptr;
  options.config.snapshotter = nullptr;
  options.chunk_records =
      static_cast<uint32_t>(flags.GetInt("chunk", 512).value_or(512));
  options.credit_window =
      static_cast<uint32_t>(flags.GetInt("window", 8).value_or(8));
  options.metrics_path = metrics_out;
  int64_t interval_ms =
      flags.GetInt("metrics-interval-ms", 1000).value_or(1000);
  options.stats_interval = Millis(interval_ms > 0 ? interval_ms : 1000);

  std::vector<distrib::AgentProcess> spawned;
  std::string connect = flags.GetString("connect", "");
  if (!connect.empty()) {
    for (std::string_view part : Split(connect, ',')) {
      auto endpoint = Endpoint::Parse(TrimWhitespace(part));
      if (!endpoint.ok()) {
        std::fprintf(stderr, "--connect: %s\n",
                     endpoint.error().ToString().c_str());
        return 2;
      }
      options.agents.push_back(*endpoint);
    }
  } else {
    size_t n = static_cast<size_t>(flags.GetInt("agents", 0).value_or(0));
    std::string binary = flags.GetString("agent-bin", "");
    if (binary.empty()) binary = distrib::SiblingBinary("ldp_replay_agent");
    for (size_t i = 0; i < n; ++i) {
      distrib::SpawnOptions spawn_options;
      if (!metrics_out.empty()) {
        // Per-agent snapshot files next to the merged stream, e.g.
        // m.jsonl -> m.agent0.jsonl (fold offline: ldp_trace_stats merge).
        std::string base = metrics_out;
        std::string suffix = ".agent" + std::to_string(i) + ".jsonl";
        if (EndsWith(base, ".jsonl")) base.resize(base.size() - 6);
        spawn_options.extra_args.push_back("--metrics-out=" + base + suffix);
      }
      auto agents = distrib::SpawnLocalAgents(binary, 1, spawn_options);
      if (!agents.ok()) {
        std::fprintf(stderr, "%s\n", agents.error().ToString().c_str());
        distrib::StopAgents(spawned);
        return 1;
      }
      spawned.push_back((*agents)[0]);
      options.agents.push_back((*agents)[0].endpoint);
    }
  }

  std::printf("replaying %zu queries against %s via %zu agents (%s)...\n",
              records.size(), server.ToString().c_str(),
              options.agents.size(),
              config.fast_mode ? "fast mode" : "trace timing");
  auto report = distrib::RunDistributedReplay(records, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.error().ToString().c_str());
    distrib::StopAgents(spawned);
    return 1;
  }
  // Agents exit on their own after BYE; reap (or terminate, on failure).
  bool agents_clean = report->failed
                          ? (distrib::StopAgents(spawned), true)
                          : distrib::WaitAgents(spawned);

  for (const auto& a : report->agents) {
    if (!a.connected) {
      std::printf("agent %u (%s): dropped at connect%s%s\n", a.id,
                  a.endpoint.ToString().c_str(),
                  a.error.empty() ? "" : ": ", a.error.c_str());
      continue;
    }
    std::printf("agent %u (%s): shipped %llu, sent %llu, answered %llu, "
                "timed_out %llu, send_failed %llu (clock offset %.3f ms, "
                "rtt %.3f ms)\n",
                a.id, a.endpoint.ToString().c_str(),
                static_cast<unsigned long long>(a.records_sent),
                static_cast<unsigned long long>(a.report.sent),
                static_cast<unsigned long long>(a.report.answered),
                static_cast<unsigned long long>(a.report.timed_out),
                static_cast<unsigned long long>(a.report.send_failed),
                ToMillis(a.clock_offset), ToMillis(a.clock_rtt));
    if (!a.error.empty()) {
      std::printf("agent %u error: %s\n", a.id, a.error.c_str());
    }
  }
  const distrib::AgentReport& m = report->merged;
  std::printf("merged: sent %llu, answered %llu (%.1f%%), timed_out %llu, "
              "send_failed %llu, wall %.2fs\n",
              static_cast<unsigned long long>(m.sent),
              static_cast<unsigned long long>(m.answered),
              m.sent ? 100.0 * static_cast<double>(m.answered) /
                           static_cast<double>(m.sent)
                     : 0,
              static_cast<unsigned long long>(m.timed_out),
              static_cast<unsigned long long>(m.send_failed),
              ToSeconds(report->wall_duration));
  if (!metrics_out.empty()) {
    std::printf("metrics: merged stream at %s\n", metrics_out.c_str());
  }

  if (report->failed) {
    std::fprintf(stderr, "distributed replay FAILED: %s\n",
                 report->error.c_str());
    return 1;
  }
  // Cross-process reconciliation (every shipped record accounted for by
  // exactly one agent, every agent's outcomes summing up).
  auto diffs = report->ReconcileDiffs();
  std::printf("reconcile: %s\n", diffs.empty() ? "OK" : "FAIL");
  for (const std::string& diff : diffs) {
    std::fprintf(stderr, "  %s\n", diff.c_str());
  }
  if (!agents_clean) {
    std::fprintf(stderr, "an agent process exited uncleanly\n");
  }
  return diffs.empty() && agents_clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(
      argc, argv,
      {"fast", "rewrite-target", "follow-dst", "loopback-dst", "tls"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown({"trace", "server", "distributors",
                                   "queriers", "fast", "rewrite-target",
                                   "follow-dst", "dst-port", "loopback-dst",
                                   "local-addr", "timeout-ms", "retransmits",
                                   "tcp-idle-timeout-ms", "tcp-reconnects",
                                   "tls", "tls-port",
                                   "datapath", "afpacket-if",
                                   "afpacket-peer-mac",
                                   "metrics-out", "metrics-interval-ms",
                                   "agents", "connect", "agent-bin",
                                   "chunk", "window", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("trace") ||
      !flags.Has("server")) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto server = Endpoint::Parse(flags.GetString("server", ""));
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().ToString().c_str());
    return 2;
  }

  std::string path = flags.GetString("trace", "");
  Result<std::vector<trace::QueryRecord>> records =
      EndsWith(path, ".txt")
          ? trace::ReadTextTraceFile(path)
          : [&]() -> Result<std::vector<trace::QueryRecord>> {
              LDP_ASSIGN_OR_RETURN(auto reader,
                                   trace::BinaryTraceReader::Open(path));
              std::vector<trace::QueryRecord> out;
              while (!reader.AtEnd()) {
                LDP_ASSIGN_OR_RETURN(auto record, reader.Next());
                out.push_back(std::move(record));
              }
              return out;
            }();
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.error().ToString().c_str());
    return 1;
  }
  bool follow_dst = flags.GetBool("follow-dst", false);
  if (!follow_dst && flags.GetBool("rewrite-target", true)) {
    for (auto& record : *records) {
      record.dst = server->addr;
      record.dst_port = server->port;
    }
  }
  bool all_tls = flags.GetBool("tls", false);
  if (all_tls) {
    if (!net::TlsAvailable()) {
      std::fprintf(stderr,
                   "--tls: this build has no OpenSSL (probe with "
                   "ldp_datapath_probe --tls)\n");
      return 1;
    }
    // The all-TLS study (paper §5, figs 13-15): every query rides DoT.
    for (auto& record : *records) record.protocol = trace::Protocol::kTls;
  }

  replay::RealtimeConfig config;
  config.server = *server;
  if (follow_dst) {
    config.follow_trace_dst = true;
    config.dst_port_override = static_cast<uint16_t>(
        flags.GetInt("dst-port", 0).value_or(0));
    config.loopback_alias_dst = flags.GetBool("loopback-dst", false);
  }
  if (flags.Has("local-addr")) {
    auto local = IpAddress::Parse(flags.GetString("local-addr", ""));
    if (!local.ok()) {
      std::fprintf(stderr, "--local-addr: %s\n",
                   local.error().ToString().c_str());
      return 2;
    }
    config.local_addr = *local;
  }
  config.n_distributors = static_cast<size_t>(
      flags.GetInt("distributors", 2).value_or(2));
  config.queriers_per_distributor =
      static_cast<size_t>(flags.GetInt("queriers", 3).value_or(3));
  config.fast_mode = flags.GetBool("fast", false);
  config.query_timeout = Millis(flags.GetInt("timeout-ms", 2000)
                                    .value_or(2000));
  config.max_retransmits =
      static_cast<int>(flags.GetInt("retransmits", 0).value_or(0));
  config.tcp_idle_timeout =
      Millis(flags.GetInt("tcp-idle-timeout-ms", 0).value_or(0));
  config.tcp_max_reconnects =
      static_cast<int>(flags.GetInt("tcp-reconnects", 3).value_or(3));
  config.tls_port =
      static_cast<uint16_t>(flags.GetInt("tls-port", 0).value_or(0));
  auto datapath = tools::ParseDatapathFlags(flags);
  if (!datapath.ok()) {
    std::fprintf(stderr, "%s\n", datapath.error().ToString().c_str());
    return 1;
  }
  config.datapath = datapath->kind;
  config.afpacket = datapath->afpacket;

  std::string metrics_out = flags.GetString("metrics-out", "");
  if (flags.GetInt("agents", 0).value_or(0) > 0 ||
      !flags.GetString("connect", "").empty()) {
    return RunDistributed(flags, *records, config, *server, metrics_out);
  }

  // Live metrics: rows stream to --metrics-out during the replay, and the
  // final row (written after all distributors join) must reconcile with the
  // report the tool prints below.
  stats::MetricsRegistry metrics;
  std::unique_ptr<stats::MetricsSnapshotter> snapshotter;
  if (!metrics_out.empty()) {
    stats::MetricsSnapshotter::Options opts;
    opts.path = metrics_out;
    int64_t interval_ms =
        flags.GetInt("metrics-interval-ms", 1000).value_or(1000);
    opts.interval = Millis(interval_ms > 0 ? interval_ms : 1000);
    opts.keep_history = true;  // for the reconciliation check below
    snapshotter = std::make_unique<stats::MetricsSnapshotter>(metrics, opts);
    if (auto s = snapshotter->Open(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
      return 1;
    }
    config.metrics = &metrics;
    config.snapshotter = snapshotter.get();
  }

  std::printf("replaying %zu queries against %s (%zu distributors x %zu "
              "queriers%s)...\n",
              records->size(), server->ToString().c_str(),
              config.n_distributors, config.queriers_per_distributor,
              config.fast_mode ? ", fast mode" : "");
  auto report = replay::RunRealtimeReplay(*records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.error().ToString().c_str());
    return 1;
  }

  std::printf("sent %llu, answered %llu (%.1f%%), wall %.2fs (%.1fk q/s)\n",
              static_cast<unsigned long long>(report->queries_sent),
              static_cast<unsigned long long>(report->answered),
              report->queries_sent
                  ? 100.0 * static_cast<double>(report->answered) /
                        static_cast<double>(report->queries_sent)
                  : 0,
              ToSeconds(report->wall_duration),
              static_cast<double>(report->queries_sent) /
                  ToSeconds(report->wall_duration) / 1000.0);
  std::printf("outcomes: timed_out %llu, send_failed %llu, retransmits "
              "%llu, id_collisions %llu\n",
              static_cast<unsigned long long>(report->timed_out),
              static_cast<unsigned long long>(report->send_failed),
              static_cast<unsigned long long>(report->retransmits),
              static_cast<unsigned long long>(report->id_collisions));
  if (report->tcp_reconnects != 0 || report->tcp_idle_closes != 0) {
    std::printf("tcp: reconnects %llu, idle_closes %llu\n",
                static_cast<unsigned long long>(report->tcp_reconnects),
                static_cast<unsigned long long>(report->tcp_idle_closes));
  }
  if (report->tls_handshakes != 0 || report->tls_aborts != 0) {
    std::printf("tls: handshakes %llu, resumptions %llu, aborts %llu\n",
                static_cast<unsigned long long>(report->tls_handshakes),
                static_cast<unsigned long long>(report->tls_resumptions),
                static_cast<unsigned long long>(report->tls_aborts));
  }

  if (!config.fast_mode) {
    stats::Summary timing;
    timing.AddAll(report->TimingErrorsMs(records->size() / 20));
    std::printf("timing error (ms):  %s\n",
                timing.Summarize().ToString(3).c_str());
    stats::Summary rate;
    for (double e : report->RateErrors()) rate.Add(100 * e);
    std::printf("rate error (%%):     %s\n",
                rate.Summarize().ToString(3).c_str());
  }
  stats::Summary latency;
  for (const auto& send : report->sends) {
    if (send.answered()) latency.Add(ToMillis(send.replied - send.sent));
  }
  if (!latency.empty()) {
    std::printf("query latency (ms): %s\n",
                latency.Summarize().ToString(3).c_str());
  }

  if (snapshotter != nullptr) {
    // The final JSONL row was written after every distributor joined, so
    // its cumulative counters must equal the report exactly — and, with
    // timeouts on, satisfy sent == answered + timed_out + send_failed.
    const auto& last = snapshotter->history().back();
    uint64_t sent = last.CounterValue("replay.sent");
    uint64_t answered = last.CounterValue("replay.answered");
    uint64_t timed_out = last.CounterValue("replay.timed_out");
    uint64_t send_failed = last.CounterValue("replay.send_failed");
    bool matches_report =
        sent == report->queries_sent && answered == report->answered &&
        timed_out == report->timed_out && send_failed == report->send_failed;
    bool invariant = config.query_timeout <= 0 ||
                     sent == answered + timed_out + send_failed;
    std::printf("metrics: %llu rows to %s; reconcile: %s\n",
                static_cast<unsigned long long>(snapshotter->rows_written()),
                metrics_out.c_str(),
                matches_report && invariant ? "OK" : "FAIL");
    if (!matches_report || !invariant) {
      std::fprintf(stderr,
                   "metrics reconcile FAILED: snapshot sent=%llu answered=%llu"
                   " timed_out=%llu send_failed=%llu vs report sent=%llu"
                   " answered=%llu timed_out=%llu send_failed=%llu\n",
                   static_cast<unsigned long long>(sent),
                   static_cast<unsigned long long>(answered),
                   static_cast<unsigned long long>(timed_out),
                   static_cast<unsigned long long>(send_failed),
                   static_cast<unsigned long long>(report->queries_sent),
                   static_cast<unsigned long long>(report->answered),
                   static_cast<unsigned long long>(report->timed_out),
                   static_cast<unsigned long long>(report->send_failed));
      return 1;
    }
  }
  return 0;
}
