// ldp-serve: an authoritative DNS server over real sockets, serving one or
// more master files — the server side of a loopback replay experiment.
//
//   ldp_serve --listen 127.0.0.1:5353 zones/root.zone zones/com.zone
//   ldp_serve --listen 127.0.0.1:5353 --tcp-idle-timeout-s 20 --sign zone.db
#include <csignal>
#include <cstdio>

#include "common/flags.h"
#include "server/socket_server.h"
#include "zone/dnssec.h"
#include "zone/masterfile.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_serve --listen IP:PORT [options] ZONEFILE...
  --tcp-idle-timeout-s N   close idle TCP connections after N seconds (20)
  --no-tcp                 UDP only
  --sign                   DNSSEC-sign zones with synthetic keys
  --zsk-bits N             ZSK size when signing (1024)
  --stats-interval-s N     print server stats every N seconds (10; 0=off)
Serves until interrupted.)";

net::EventLoop* g_loop = nullptr;

void HandleSignal(int) {
  if (g_loop != nullptr) g_loop->Stop();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"no-tcp", "sign"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown({"listen", "tcp-idle-timeout-s", "no-tcp",
                                   "sign", "zsk-bits", "stats-interval-s",
                                   "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || flags.positional().empty() ||
      !flags.Has("listen")) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto listen = Endpoint::Parse(flags.GetString("listen", ""));
  if (!listen.ok()) {
    std::fprintf(stderr, "%s\n", listen.error().ToString().c_str());
    return 2;
  }

  zone::ZoneSet zones;
  for (const auto& path : flags.positional()) {
    auto zone = zone::LoadMasterFile(path, zone::MasterFileOptions{});
    if (!zone.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   zone.error().ToString().c_str());
      return 1;
    }
    if (flags.GetBool("sign", false)) {
      zone::DnssecConfig dnssec;
      dnssec.zsk_bits = static_cast<int>(
          flags.GetInt("zsk-bits", 1024).value_or(1024));
      if (auto s = zone::SignZone(*zone, dnssec); !s.ok()) {
        std::fprintf(stderr, "sign %s: %s\n", path.c_str(),
                     s.error().ToString().c_str());
        return 1;
      }
    }
    if (auto s = zone->Validate(); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   s.error().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s (%zu records) from %s\n",
                zone->origin().ToString().c_str(), zone->record_count(),
                path.c_str());
    auto added =
        zones.AddZone(std::make_shared<zone::Zone>(std::move(*zone)));
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.error().ToString().c_str());
      return 1;
    }
  }
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));

  auto loop = net::EventLoop::Create();
  if (!loop.ok()) {
    std::fprintf(stderr, "%s\n", loop.error().ToString().c_str());
    return 1;
  }
  g_loop = loop->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  server::SocketDnsServer::Config config;
  config.listen = *listen;
  config.serve_tcp = !flags.GetBool("no-tcp", false);
  config.tcp_idle_timeout =
      Seconds(flags.GetInt("tcp-idle-timeout-s", 20).value_or(20));
  auto server = server::SocketDnsServer::Start(**loop, engine, config);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().ToString().c_str());
    return 1;
  }
  std::printf("serving on %s (udp%s), ^C to stop\n",
              (*server)->endpoint().ToString().c_str(),
              config.serve_tcp ? "+tcp" : "");

  int64_t stats_interval =
      flags.GetInt("stats-interval-s", 10).value_or(10);
  std::function<void()> print_stats = [&]() {
    const auto& stats = engine->stats();
    std::printf("queries=%llu nxdomain=%llu refused=%llu truncated=%llu "
                "bytes-out=%llu open-tcp=%zu\n",
                static_cast<unsigned long long>(stats.queries),
                static_cast<unsigned long long>(stats.nxdomain),
                static_cast<unsigned long long>(stats.refused),
                static_cast<unsigned long long>(stats.truncated),
                static_cast<unsigned long long>(stats.response_bytes),
                (*server)->open_tcp_connections());
    (*loop)->ScheduleAfter(Seconds(stats_interval), print_stats);
  };
  if (stats_interval > 0) {
    (*loop)->ScheduleAfter(Seconds(stats_interval), print_stats);
  }

  (*loop)->Run();
  std::printf("\nshutting down after %llu queries\n",
              static_cast<unsigned long long>(engine->stats().queries));
  return 0;
}
