// ldp-serve: an authoritative DNS server over real sockets, serving one or
// more master files — the server side of a loopback replay experiment.
//
//   ldp_serve --listen 127.0.0.1:5353 zones/root.zone zones/com.zone
//   ldp_serve --listen 127.0.0.1:5353 --threads 4 --response-cache 4096 z.db
//   ldp_serve --listen 127.0.0.1:5353 --views hierarchy/views.txt
#include <csignal>
#include <cstdio>

#include "common/flags.h"
#include "server/sharded_server.h"
#include "stats/metrics.h"
#include "datapath_flags.h"
#include "zone/dnssec.h"
#include "zone/manifest.h"
#include "zone/masterfile.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_serve --listen IP:PORT [options] ZONEFILE...
       ldp_serve --listen IP:PORT [options] --views MANIFEST
  --views FILE             split-horizon views manifest (zone selection by
                           query source address, paper-style meta server);
                           replaces positional zone files
  --threads N              UDP worker shards, SO_REUSEPORT (0 = all cores)
  --response-cache N       wire-level response cache, N entries/shard (0=off)
  --udp-rcvbuf-bytes N     SO_RCVBUF per shard socket (0 = kernel default)
  --datapath MODE          epoll (default) or afpacket (see below)
  --afpacket-if IFACE      interface for afpacket rings (lo)
  --afpacket-peer-mac MAC  afpacket fallback destination MAC
  --tcp-idle-timeout-s N   close idle TCP connections after N seconds (20)
  --no-tcp                 UDP only
  --tls                    also serve DNS-over-TLS (needs an OpenSSL build;
                           probe with ldp_datapath_probe --tls)
  --tls-port N             DoT listener port (0 = ephemeral, printed)
  --max-tcp-conns N        per-shard cap on open TCP+TLS connections; at the
                           cap new accepts are closed and counted
                           (server.tcp_accept_rejected). 0 = unbounded
  --sign                   DNSSEC-sign zones with synthetic keys
  --zsk-bits N             ZSK size when signing (1024)
  --stats-interval-s N     print server stats every N seconds (10; 0=off)
  --metrics-out FILE       append JSONL metric snapshots to FILE
  --metrics-interval-ms N  snapshot cadence in milliseconds (1000)
Serves until interrupted.)";

net::EventLoop* g_loop = nullptr;

// RequestStop is an eventfd write: async-signal-safe, unlike Stop().
void HandleSignal(int) {
  if (g_loop != nullptr) g_loop->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"no-tcp", "sign", "tls"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown({"listen", "views", "threads",
                                   "response-cache", "udp-rcvbuf-bytes",
                                   "datapath", "afpacket-if",
                                   "afpacket-peer-mac",
                                   "tcp-idle-timeout-s", "no-tcp", "tls",
                                   "tls-port", "max-tcp-conns", "sign",
                                   "zsk-bits", "stats-interval-s",
                                   "metrics-out", "metrics-interval-ms",
                                   "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  std::string views_path = flags.GetString("views", "");
  if (flags.GetBool("help", false) || !flags.Has("listen") ||
      (flags.positional().empty() == views_path.empty())) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  auto listen = Endpoint::Parse(flags.GetString("listen", ""));
  if (!listen.ok()) {
    std::fprintf(stderr, "%s\n", listen.error().ToString().c_str());
    return 2;
  }

  // Strict parsing for the sharding flags: silently falling back to one
  // shard would let "--threads abc" masquerade as a multi-core experiment.
  auto threads = flags.GetInt("threads", 1);
  auto cache_entries = flags.GetInt("response-cache", 0);
  auto rcvbuf = flags.GetInt("udp-rcvbuf-bytes", 0);
  if (!threads.ok() || *threads < 0) {
    std::fprintf(stderr, "--threads: expected a non-negative integer\n");
    return 2;
  }
  if (!cache_entries.ok() || *cache_entries < 0) {
    std::fprintf(stderr,
                 "--response-cache: expected a non-negative integer\n");
    return 2;
  }
  if (!rcvbuf.ok() || *rcvbuf < 0) {
    std::fprintf(stderr,
                 "--udp-rcvbuf-bytes: expected a non-negative integer\n");
    return 2;
  }
  auto datapath = tools::ParseDatapathFlags(flags);
  if (!datapath.ok()) {
    std::fprintf(stderr, "%s\n", datapath.error().ToString().c_str());
    return 1;
  }
  auto tls_port = flags.GetInt("tls-port", 0);
  auto max_tcp_conns = flags.GetInt("max-tcp-conns", 0);
  if (!tls_port.ok() || *tls_port < 0 || *tls_port > 65535) {
    std::fprintf(stderr, "--tls-port: expected a port number\n");
    return 2;
  }
  if (!max_tcp_conns.ok() || *max_tcp_conns < 0) {
    std::fprintf(stderr,
                 "--max-tcp-conns: expected a non-negative integer\n");
    return 2;
  }

  std::shared_ptr<const zone::ViewTable> shared_views;
  if (!views_path.empty()) {
    auto manifest = zone::LoadViewManifest(views_path);
    if (!manifest.ok()) {
      std::fprintf(stderr, "%s\n", manifest.error().ToString().c_str());
      return 1;
    }
    // Zone paths in the manifest are relative to the manifest itself.
    size_t slash = views_path.find_last_of('/');
    std::string base_dir =
        slash == std::string::npos ? "" : views_path.substr(0, slash);
    auto table = zone::BuildViewTable(*manifest, base_dir);
    if (!table.ok()) {
      std::fprintf(stderr, "%s\n", table.error().ToString().c_str());
      return 1;
    }
    shared_views = std::move(*table);
    std::printf("loaded %zu views from %s\n", shared_views->view_count(),
                views_path.c_str());
  } else {
    zone::ZoneSet zones;
    for (const auto& path : flags.positional()) {
      auto zone = zone::LoadMasterFile(path, zone::MasterFileOptions{});
      if (!zone.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     zone.error().ToString().c_str());
        return 1;
      }
      if (flags.GetBool("sign", false)) {
        zone::DnssecConfig dnssec;
        dnssec.zsk_bits = static_cast<int>(
            flags.GetInt("zsk-bits", 1024).value_or(1024));
        if (auto s = zone::SignZone(*zone, dnssec); !s.ok()) {
          std::fprintf(stderr, "sign %s: %s\n", path.c_str(),
                       s.error().ToString().c_str());
          return 1;
        }
      }
      if (auto s = zone->Validate(); !s.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     s.error().ToString().c_str());
        return 1;
      }
      std::printf("loaded %s (%zu records) from %s\n",
                  zone->origin().ToString().c_str(), zone->record_count(),
                  path.c_str());
      auto added =
          zones.AddZone(std::make_shared<zone::Zone>(std::move(*zone)));
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.error().ToString().c_str());
        return 1;
      }
    }
    zone::ViewTable views;
    views.SetDefaultView(std::move(zones));
    shared_views = std::make_shared<const zone::ViewTable>(std::move(views));
  }

  // Main-thread loop: signal wakeup + periodic stats. The shards run their
  // own loops on worker threads.
  auto loop = net::EventLoop::Create();
  if (!loop.ok()) {
    std::fprintf(stderr, "%s\n", loop.error().ToString().c_str());
    return 1;
  }
  g_loop = loop->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Live metrics: the registry outlives the server (declared before it, so
  // destroyed after); the snapshotter runs off this main-thread loop.
  stats::MetricsRegistry metrics;
  std::string metrics_out = flags.GetString("metrics-out", "");
  int64_t metrics_interval_ms =
      flags.GetInt("metrics-interval-ms", 1000).value_or(1000);
  std::unique_ptr<stats::MetricsSnapshotter> snapshotter;
  if (!metrics_out.empty()) {
    stats::MetricsSnapshotter::Options opts;
    opts.path = metrics_out;
    opts.interval = Millis(metrics_interval_ms > 0 ? metrics_interval_ms
                                                   : 1000);
    snapshotter =
        std::make_unique<stats::MetricsSnapshotter>(metrics, opts);
    if (auto s = snapshotter->Open(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
      return 1;
    }
  }

  server::ShardedDnsServer::Config config;
  config.listen = *listen;
  config.n_shards = static_cast<size_t>(*threads);
  config.serve_tcp = !flags.GetBool("no-tcp", false);
  config.serve_tls = flags.GetBool("tls", false);
  config.tls_port = static_cast<uint16_t>(*tls_port);
  config.max_tcp_connections = static_cast<size_t>(*max_tcp_conns);
  config.tcp_idle_timeout =
      Seconds(flags.GetInt("tcp-idle-timeout-s", 20).value_or(20));
  config.engine.response_cache_entries =
      static_cast<size_t>(*cache_entries);
  config.udp_recv_buffer_bytes = static_cast<int>(*rcvbuf);
  config.datapath = datapath->kind;
  config.afpacket = datapath->afpacket;
  if (snapshotter != nullptr) config.metrics = &metrics;
  auto server = server::ShardedDnsServer::Start(shared_views, config);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().ToString().c_str());
    return 1;
  }
  std::printf("serving on %s (udp%s%s, %zu shard%s, cache %zu/shard, "
              "datapath %s), ^C to stop\n",
              (*server)->endpoint().ToString().c_str(),
              config.serve_tcp ? "+tcp" : "",
              config.serve_tls ? "+tls" : "", (*server)->n_shards(),
              (*server)->n_shards() == 1 ? "" : "s",
              config.engine.response_cache_entries,
              std::string(net::DatapathKindName(config.datapath)).c_str());
  if (config.serve_tls) {
    std::printf("tls on %s\n", (*server)->tls_endpoint().ToString().c_str());
  }
  // The port lines are what drive scripted runs (verify.sh parses them),
  // so push them out even when stdout is a pipe.
  std::fflush(stdout);

  int64_t stats_interval =
      flags.GetInt("stats-interval-s", 10).value_or(10);
  std::function<void()> print_stats = [&]() {
    server::EngineStats stats = (*server)->TotalStats();
    std::printf("queries=%llu nxdomain=%llu refused=%llu truncated=%llu "
                "bytes-out=%llu cache-hit=%llu cache-miss=%llu\n",
                static_cast<unsigned long long>(stats.queries),
                static_cast<unsigned long long>(stats.nxdomain),
                static_cast<unsigned long long>(stats.refused),
                static_cast<unsigned long long>(stats.truncated),
                static_cast<unsigned long long>(stats.response_bytes),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses));
    (*loop)->ScheduleAfter(Seconds(stats_interval), print_stats);
  };
  if (stats_interval > 0) {
    (*loop)->ScheduleAfter(Seconds(stats_interval), print_stats);
  }

  std::function<void()> write_snapshot = [&]() {
    snapshotter->WriteNow();
    (*loop)->ScheduleAfter(snapshotter->interval(), write_snapshot);
  };
  if (snapshotter != nullptr) {
    (*loop)->ScheduleAfter(snapshotter->interval(), write_snapshot);
  }

  (*loop)->Run();
  (*server)->Stop();
  // Final row after the shards stopped: totals match the shutdown report.
  if (snapshotter != nullptr) snapshotter->WriteNow();
  std::printf("\nshutting down after %llu queries\n",
              static_cast<unsigned long long>(
                  (*server)->TotalStats().queries));
  return 0;
}
