// ldp-trace-convert: convert DNS query traces between the three formats of
// paper Figure 3 — pcap (network capture), column text (editable), and the
// length-prefixed binary replay input.
//
//   ldp_trace_convert --in queries.pcap --out queries.txt
//   ldp_trace_convert --in queries.txt  --out queries.bin
//   ldp_trace_convert --in queries.bin  --out queries.pcap
//
// Formats are inferred from file extensions (.pcap/.txt/.bin) or forced
// with --in-format/--out-format.
#include <cstdio>

#include "common/flags.h"
#include "common/strings.h"
#include "trace/binary.h"
#include "trace/pcap.h"
#include "trace/text.h"

using namespace ldp;

namespace {

constexpr const char* kUsage = R"(usage: ldp_trace_convert --in FILE --out FILE
      [--in-format pcap|text|binary] [--out-format pcap|text|binary]
      [--limit N]
Converts DNS query traces between capture, editable-text, and replay-binary
formats. Response packets in pcap inputs are skipped.)";

std::string InferFormat(const std::string& path, const std::string& forced) {
  if (!forced.empty()) return forced;
  if (EndsWith(path, ".pcap")) return "pcap";
  if (EndsWith(path, ".txt") || EndsWith(path, ".text")) return "text";
  if (EndsWith(path, ".bin")) return "binary";
  return "";
}

Result<std::vector<trace::QueryRecord>> Load(const std::string& path,
                                             const std::string& format) {
  if (format == "text") return trace::ReadTextTraceFile(path);
  if (format == "binary") {
    LDP_ASSIGN_OR_RETURN(auto reader, trace::BinaryTraceReader::Open(path));
    std::vector<trace::QueryRecord> records;
    while (!reader.AtEnd()) {
      LDP_ASSIGN_OR_RETURN(auto record, reader.Next());
      records.push_back(std::move(record));
    }
    return records;
  }
  if (format == "pcap") {
    LDP_ASSIGN_OR_RETURN(auto packets, trace::ReadPcapFile(path));
    std::vector<trace::QueryRecord> records;
    size_t skipped = 0;
    for (const auto& packet : packets) {
      auto query = trace::PacketToQuery(packet);
      if (query.ok()) {
        records.push_back(std::move(*query));
      } else {
        ++skipped;
      }
    }
    if (skipped > 0) {
      std::fprintf(stderr, "skipped %zu non-query packets\n", skipped);
    }
    return records;
  }
  return Error(ErrorCode::kInvalidArgument, "unknown format: " + format);
}

Status Save(const std::vector<trace::QueryRecord>& records,
            const std::string& path, const std::string& format) {
  if (format == "text") return trace::WriteTextTraceFile(records, path);
  if (format == "binary") return trace::WriteBinaryTraceFile(records, path);
  if (format == "pcap") {
    std::vector<trace::PacketRecord> packets;
    packets.reserve(records.size());
    for (const auto& record : records) {
      packets.push_back(trace::MessageToPacket(
          record.ToMessage(), record.timestamp, record.src, record.src_port,
          record.dst, record.dst_port, record.protocol));
    }
    return trace::WritePcapFile(packets, path);
  }
  return Error(ErrorCode::kInvalidArgument, "unknown format: " + format);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().ToString().c_str());
    return 2;
  }
  if (auto s = flags->RequireKnown(
          {"in", "out", "in-format", "out-format", "limit", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  if (flags->GetBool("help", false) || !flags->Has("in") ||
      !flags->Has("out")) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }

  std::string in_path = flags->GetString("in", "");
  std::string out_path = flags->GetString("out", "");
  std::string in_format =
      InferFormat(in_path, flags->GetString("in-format", ""));
  std::string out_format =
      InferFormat(out_path, flags->GetString("out-format", ""));
  if (in_format.empty() || out_format.empty()) {
    std::fprintf(stderr, "cannot infer format; use --in-format/--out-format\n");
    return 2;
  }

  auto records = Load(in_path, in_format);
  if (!records.ok()) {
    std::fprintf(stderr, "read %s: %s\n", in_path.c_str(),
                 records.error().ToString().c_str());
    return 1;
  }
  auto limit = flags->GetInt("limit", 0);
  if (!limit.ok()) {
    std::fprintf(stderr, "%s\n", limit.error().ToString().c_str());
    return 2;
  }
  if (*limit > 0 && records->size() > static_cast<size_t>(*limit)) {
    records->resize(static_cast<size_t>(*limit));
  }

  if (auto s = Save(*records, out_path, out_format); !s.ok()) {
    std::fprintf(stderr, "write %s: %s\n", out_path.c_str(),
                 s.error().ToString().c_str());
    return 1;
  }
  std::printf("%zu queries: %s (%s) -> %s (%s)\n", records->size(),
              in_path.c_str(), in_format.c_str(), out_path.c_str(),
              out_format.c_str());
  return 0;
}
