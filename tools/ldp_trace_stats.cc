// ldp-trace-stats: print Table-1-style inventory statistics for a trace
// file — the first thing to run on a new trace.
//
//   ldp_trace_stats queries.bin
//   ldp_trace_stats --per-client queries.txt
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/flags.h"
#include "common/strings.h"
#include "trace/binary.h"
#include "trace/text.h"
#include "trace/tracestats.h"

using namespace ldp;

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"per-client"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown({"per-client", "help"}); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 2;
  }
  if (flags.GetBool("help", false) || flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: ldp_trace_stats [--per-client] FILE(.txt|.bin)\n");
    return 2;
  }
  const std::string& path = flags.positional()[0];

  Result<std::vector<trace::QueryRecord>> records =
      EndsWith(path, ".txt")
          ? trace::ReadTextTraceFile(path)
          : [&]() -> Result<std::vector<trace::QueryRecord>> {
              LDP_ASSIGN_OR_RETURN(auto reader,
                                   trace::BinaryTraceReader::Open(path));
              std::vector<trace::QueryRecord> out;
              while (!reader.AtEnd()) {
                LDP_ASSIGN_OR_RETURN(auto record, reader.Next());
                out.push_back(std::move(record));
              }
              return out;
            }();
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.error().ToString().c_str());
    return 1;
  }

  auto stats = trace::ComputeTraceStats(*records);
  std::printf("%s\n", path.c_str());
  std::printf("  records:            %zu\n", stats.records);
  std::printf("  duration:           %.3f s\n", ToSeconds(stats.duration));
  std::printf("  client IPs:         %zu\n", stats.unique_clients);
  std::printf("  inter-arrival:      %.6f s +- %.6f s\n",
              stats.interarrival_mean_s, stats.interarrival_stddev_s);
  std::printf("  mean rate:          %.1f q/s\n", stats.mean_rate_qps);
  std::printf("  DO-bit fraction:    %.1f%%\n", 100 * stats.fraction_do);
  std::printf("  TCP/TLS fraction:   %.1f%%\n", 100 * stats.fraction_tcp);

  if (flags.GetBool("per-client", false) && !records->empty()) {
    std::unordered_map<IpAddress, size_t> loads;
    for (const auto& record : *records) ++loads[record.src];
    std::vector<size_t> counts;
    counts.reserve(loads.size());
    for (const auto& [src, count] : loads) counts.push_back(count);
    std::sort(counts.rbegin(), counts.rend());
    size_t total = records->size();
    std::printf("  per-client load:\n");
    for (double fraction : {0.01, 0.05, 0.2}) {
      size_t n = std::max<size_t>(
          1, static_cast<size_t>(fraction *
                                 static_cast<double>(counts.size())));
      size_t share = 0;
      for (size_t i = 0; i < n; ++i) share += counts[i];
      std::printf("    top %4.1f%% of clients: %.1f%% of queries\n",
                  100 * fraction,
                  100.0 * static_cast<double>(share) /
                      static_cast<double>(total));
    }
    size_t quiet = 0;
    for (size_t c : counts) quiet += c < 10 ? 1 : 0;
    std::printf("    clients with <10 queries: %.1f%%\n",
                100.0 * static_cast<double>(quiet) /
                    static_cast<double>(counts.size()));
  }
  return 0;
}
