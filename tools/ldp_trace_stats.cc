// ldp-trace-stats: print Table-1-style inventory statistics for a trace
// file — the first thing to run on a new trace — and fold per-agent
// metrics JSONL files into one stream.
//
//   ldp_trace_stats queries.bin
//   ldp_trace_stats --per-client queries.txt
//   ldp_trace_stats merge --out merged.jsonl agent0.jsonl agent1.jsonl
//   ldp_trace_stats --by-site proxy_metrics.jsonl
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/flags.h"
#include "common/strings.h"
#include "stats/snapshot_io.h"
#include "trace/binary.h"
#include "trace/text.h"
#include "trace/tracestats.h"

using namespace ldp;

namespace {

// `merge` subcommand: combine N per-agent snapshot streams row by row
// (counters sum; histograms merge exactly when the files carry buckets).
int RunMerge(const Flags& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: ldp_trace_stats merge [--out FILE] A.jsonl B.jsonl"
                 " ...\n");
    return 2;
  }
  std::vector<std::vector<stats::JsonlRow>> streams;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    auto rows = stats::ReadJsonlFile(flags.positional()[i]);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s\n", rows.error().ToString().c_str());
      return 1;
    }
    streams.push_back(std::move(*rows));
  }
  std::vector<stats::JsonlRow> merged = stats::MergeJsonlStreams(streams);

  std::string out_path = flags.GetString("out", "");
  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "open %s failed\n", out_path.c_str());
      return 1;
    }
  }
  for (const stats::JsonlRow& row : merged) {
    std::string line = stats::FormatJsonlRow(row);
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
  }
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "merged %zu streams into %zu rows at %s\n",
                 streams.size(), merged.size(), out_path.c_str());
  }
  return 0;
}

// `--by-site` mode: read a proxy metrics JSONL stream and break the final
// cumulative totals down by anycast site (the proxy.site.NAME.* counters
// RegisterRelayMetrics emits when `ldp_proxy --sites` is set) — the
// offline view of a catchment-skew run.
int RunBySite(const std::string& path) {
  auto rows = stats::ReadJsonlFile(path);
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.error().ToString().c_str());
    return 1;
  }
  if (rows->empty()) {
    std::fprintf(stderr, "%s: no snapshot rows\n", path.c_str());
    return 1;
  }
  // Counters are cumulative totals; the last row is the run's final state.
  const stats::JsonlRow& last = rows->back();
  struct SiteRow {
    std::string name;
    uint64_t queries = 0;
    uint64_t responses = 0;
  };
  std::vector<SiteRow> sites;
  uint64_t total_queries = 0;
  constexpr std::string_view kPrefix = "proxy.site.";
  for (const auto& [name, cell] : last.counters) {
    if (name.size() <= kPrefix.size() || name.compare(0, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    std::string_view rest(name);
    rest.remove_prefix(kPrefix.size());
    size_t dot = rest.rfind('.');
    if (dot == std::string_view::npos) continue;
    std::string site(rest.substr(0, dot));
    std::string_view field = rest.substr(dot + 1);
    auto row = std::find_if(sites.begin(), sites.end(), [&](const SiteRow& s) {
      return s.name == site;
    });
    if (row == sites.end()) {
      sites.push_back({site, 0, 0});
      row = std::prev(sites.end());
    }
    if (field == "queries") {
      row->queries = cell.total;
      total_queries += cell.total;
    } else if (field == "responses") {
      row->responses = cell.total;
    }
  }
  if (sites.empty()) {
    std::fprintf(stderr,
                 "%s: no proxy.site.* counters (was the proxy run with "
                 "--sites?)\n",
                 path.c_str());
    return 1;
  }
  std::sort(sites.begin(), sites.end(),
            [](const SiteRow& a, const SiteRow& b) {
              return a.queries > b.queries;
            });
  std::printf("%s — per-site load (%zu rows, final totals)\n", path.c_str(),
              rows->size());
  for (const auto& site : sites) {
    double share = total_queries == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(site.queries) /
                             static_cast<double>(total_queries);
    std::printf("  site %-12s queries %10llu (%5.1f%%)  responses %10llu\n",
                site.name.c_str(),
                static_cast<unsigned long long>(site.queries), share,
                static_cast<unsigned long long>(site.responses));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"per-client", "by-site"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown({"per-client", "by-site", "out", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 2;
  }
  if (!flags.positional().empty() && flags.positional()[0] == "merge") {
    return RunMerge(flags);
  }
  if (flags.GetBool("help", false) || flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: ldp_trace_stats [--per-client] FILE(.txt|.bin)\n"
                 "       ldp_trace_stats merge [--out FILE] A.jsonl ...\n"
                 "       ldp_trace_stats --by-site METRICS.jsonl\n");
    return 2;
  }
  if (flags.GetBool("by-site", false)) {
    return RunBySite(flags.positional()[0]);
  }
  const std::string& path = flags.positional()[0];

  Result<std::vector<trace::QueryRecord>> records =
      EndsWith(path, ".txt")
          ? trace::ReadTextTraceFile(path)
          : [&]() -> Result<std::vector<trace::QueryRecord>> {
              LDP_ASSIGN_OR_RETURN(auto reader,
                                   trace::BinaryTraceReader::Open(path));
              std::vector<trace::QueryRecord> out;
              while (!reader.AtEnd()) {
                LDP_ASSIGN_OR_RETURN(auto record, reader.Next());
                out.push_back(std::move(record));
              }
              return out;
            }();
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.error().ToString().c_str());
    return 1;
  }

  auto stats = trace::ComputeTraceStats(*records);
  std::printf("%s\n", path.c_str());
  std::printf("  records:            %zu\n", stats.records);
  std::printf("  duration:           %.3f s\n", ToSeconds(stats.duration));
  std::printf("  client IPs:         %zu\n", stats.unique_clients);
  std::printf("  inter-arrival:      %.6f s +- %.6f s\n",
              stats.interarrival_mean_s, stats.interarrival_stddev_s);
  std::printf("  mean rate:          %.1f q/s\n", stats.mean_rate_qps);
  std::printf("  DO-bit fraction:    %.1f%%\n", 100 * stats.fraction_do);
  std::printf("  TCP/TLS fraction:   %.1f%%\n", 100 * stats.fraction_tcp);

  if (flags.GetBool("per-client", false) && !records->empty()) {
    std::unordered_map<IpAddress, size_t> loads;
    for (const auto& record : *records) ++loads[record.src];
    std::vector<size_t> counts;
    counts.reserve(loads.size());
    for (const auto& [src, count] : loads) counts.push_back(count);
    std::sort(counts.rbegin(), counts.rend());
    size_t total = records->size();
    std::printf("  per-client load:\n");
    for (double fraction : {0.01, 0.05, 0.2}) {
      size_t n = std::max<size_t>(
          1, static_cast<size_t>(fraction *
                                 static_cast<double>(counts.size())));
      size_t share = 0;
      for (size_t i = 0; i < n; ++i) share += counts[i];
      std::printf("    top %4.1f%% of clients: %.1f%% of queries\n",
                  100 * fraction,
                  100.0 * static_cast<double>(share) /
                      static_cast<double>(total));
    }
    size_t quiet = 0;
    for (size_t c : counts) quiet += c < 10 ? 1 : 0;
    std::printf("    clients with <10 queries: %.1f%%\n",
                100.0 * static_cast<double>(quiet) /
                    static_cast<double>(counts.size()));
  }
  return 0;
}
