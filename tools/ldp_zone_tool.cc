// ldp-zone-tool: zone-file utilities — validate, DNSSEC-sign, normalize,
// and summarize master files.
//
//   ldp_zone_tool validate zone.db
//   ldp_zone_tool sign --zsk-bits 2048 --rollover zone.db signed.db
//   ldp_zone_tool normalize zone.db out.db      (canonical order, FQDNs)
//   ldp_zone_tool info zone.db
//   ldp_zone_tool hierarchy --tlds 3 --slds 4 hierarchy/
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>

#include "common/flags.h"
#include "trace/text.h"
#include "workload/hierarchy.h"
#include "zone/dnssec.h"
#include "zone/lookup.h"
#include "zone/manifest.h"
#include "zone/masterfile.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_zone_tool COMMAND [flags] ZONEFILE [OUTFILE]
       ldp_zone_tool hierarchy [flags] OUTDIR
commands:
  validate   parse + servability checks (SOA, apex NS)
  sign       add synthetic DNSSEC (DNSKEY/NSEC/RRSIG); flags:
               --zsk-bits N (1024)  --ksk-bits N (2048)  --rollover
  normalize  rewrite in canonical order with fully-qualified names
  info       print summary: origin, counts, delegations, DNSSEC state
  hierarchy  synthesize a root/TLD/SLD hierarchy into OUTDIR: one master
             file per zone, a views.txt manifest (split-horizon views keyed
             on each zone's nameserver addresses), and a queries.txt trace
             whose destinations are the public nameserver addresses; flags:
               --tlds N (3)  --slds N (4)  --hosts N (2)  --ns N (2)
               --queries N (2000)  --qps N (2000)  --tcp-every N (0 = none)
               --seed N (42)  --raw-views (keep public addresses in
               views.txt instead of LoopbackAlias'd ones))";

int Info(const zone::Zone& zone) {
  std::printf("origin:        %s\n", zone.origin().ToString().c_str());
  std::printf("records:       %zu\n", zone.record_count());
  std::printf("nodes:         %zu\n", zone.node_count());
  auto cuts = zone.DelegationPoints();
  std::printf("delegations:   %zu\n", cuts.size());
  for (size_t i = 0; i < cuts.size() && i < 5; ++i) {
    std::printf("  %s\n", cuts[i].ToString().c_str());
  }
  if (cuts.size() > 5) std::printf("  ... %zu more\n", cuts.size() - 5);
  bool signed_zone =
      zone.FindRRset(zone.origin(), dns::RRType::kDNSKEY) != nullptr;
  std::printf("dnssec:        %s\n", signed_zone ? "signed" : "unsigned");
  std::printf("est. memory:   %.1f KB\n",
              static_cast<double>(zone.MemoryFootprint()) / 1024.0);
  const dns::RRset* soa = zone.Soa();
  if (soa != nullptr && !soa->rdatas.empty()) {
    std::printf("soa serial:    %u\n",
                std::get<dns::SoaRdata>(soa->rdatas[0]).serial);
  }
  return 0;
}

std::string ZoneFileName(const dns::Name& origin) {
  std::string name = origin.ToString();
  if (name == ".") return "root.zone";
  if (!name.empty() && name.back() == '.') name.pop_back();
  return name + ".zone";
}

// hierarchy command: write a self-contained experiment directory — zones,
// views.txt (split-horizon manifest), and queries.txt (text trace whose
// destinations are the public nameserver addresses, i.e. OQDAs).
int Hierarchy(const Flags& flags, const std::string& out_dir) {
  workload::HierarchyConfig config;
  config.n_tlds = static_cast<size_t>(flags.GetInt("tlds", 3).value_or(3));
  config.n_slds_per_tld =
      static_cast<size_t>(flags.GetInt("slds", 4).value_or(4));
  config.n_hosts_per_sld =
      static_cast<size_t>(flags.GetInt("hosts", 2).value_or(2));
  config.ns_per_zone = static_cast<size_t>(flags.GetInt("ns", 2).value_or(2));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42).value_or(42));
  auto n_queries = flags.GetInt("queries", 2000);
  auto qps = flags.GetInt("qps", 2000);
  auto tcp_every = flags.GetInt("tcp-every", 0);
  if (!n_queries.ok() || *n_queries < 0 || !qps.ok() || *qps < 1 ||
      !tcp_every.ok() || *tcp_every < 0 || config.n_tlds < 1 ||
      config.ns_per_zone < 1) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }
  if (::mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::perror(out_dir.c_str());
    return 1;
  }

  workload::Hierarchy hierarchy = workload::BuildHierarchy(config);

  // views.txt lists the addresses the meta server will actually see as
  // query sources: the proxy binds these and uses them as rewritten source
  // addresses, so by default they are the LoopbackAlias'd images of the
  // public nameserver addresses. --raw-views keeps the public ones (for
  // setups with real interface aliases instead of the 127/8 stand-in).
  bool raw_views = flags.GetBool("raw-views", false);
  zone::ViewManifest manifest;
  for (const auto& z : hierarchy.AllZones()) {
    std::string file = ZoneFileName(z->origin());
    if (auto s = zone::SaveMasterFile(*z, out_dir + "/" + file); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
      return 1;
    }
    auto ns = hierarchy.nameservers.find(z->origin());
    if (ns == hierarchy.nameservers.end() || ns->second.empty()) {
      std::fprintf(stderr, "no nameservers generated for %s\n",
                   z->origin().ToString().c_str());
      return 1;
    }
    zone::ViewSpec view;
    view.name = file.substr(0, file.size() - sizeof(".zone") + 1);
    for (IpAddress addr : ns->second) {
      view.sources.push_back(raw_views ? addr : LoopbackAlias(addr));
    }
    view.zone_files.push_back(std::move(file));
    manifest.views.push_back(std::move(view));
  }
  if (auto s = zone::SaveViewManifest(manifest, out_dir + "/views.txt");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }

  // Queries target the PUBLIC nameserver addresses — the trace is what a
  // capture point would have seen. The replayer remaps them with
  // --follow-dst --loopback-dst; most are leaf A lookups at the owning SLD,
  // every 7th asks the parent zone for the delegation so the TLD and root
  // views get traffic too.
  std::vector<trace::QueryRecord> records;
  records.reserve(static_cast<size_t>(*n_queries));
  const NanoDuration step = 1'000'000'000 / *qps;
  const auto& hosts = hierarchy.hostnames;
  if (hosts.empty() && *n_queries > 0) {
    std::fprintf(stderr, "hierarchy generated no hostnames\n");
    return 1;
  }
  for (int64_t i = 0; i < *n_queries; ++i) {
    const size_t index = static_cast<size_t>(i);
    trace::QueryRecord record;
    record.timestamp = static_cast<NanoTime>(i) * step;
    record.src = IpAddress(203, 0, 113, static_cast<uint8_t>(1 + index % 200));
    record.src_port = static_cast<uint16_t>(40000 + index % 20000);
    record.qname = hosts[index % hosts.size()];
    auto owner = record.qname.Parent();
    if (!owner.ok()) continue;
    dns::Name target_zone = *owner;
    if (index % 7 == 3) {
      record.qname = target_zone;
      record.qtype = dns::RRType::kNS;
      if (auto parent = target_zone.Parent(); parent.ok()) {
        target_zone = *parent;
      }
    }
    auto ns = hierarchy.nameservers.find(target_zone);
    if (ns == hierarchy.nameservers.end() || ns->second.empty()) continue;
    record.dst = ns->second[index % ns->second.size()];
    record.dst_port = 53;
    record.rd = false;
    record.protocol = *tcp_every > 0 && i % *tcp_every == 0
                          ? trace::Protocol::kTcp
                          : trace::Protocol::kUdp;
    records.push_back(std::move(record));
  }
  if (auto s = trace::WriteTextTraceFile(records, out_dir + "/queries.txt");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }

  std::printf("hierarchy: %zu zones, %zu views, %zu queries -> %s\n",
              hierarchy.AllZones().size(), manifest.views.size(),
              records.size(), out_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"rollover", "raw-views"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown(
          {"zsk-bits", "ksk-bits", "rollover", "tlds", "slds", "hosts", "ns",
           "queries", "qps", "tcp-every", "seed", "raw-views", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  const auto& args = flags.positional();
  if (flags.GetBool("help", false) || args.size() < 2) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }
  const std::string& command = args[0];
  const std::string& in_path = args[1];

  // hierarchy takes an output directory, not a zone file, so it dispatches
  // before the load below.
  if (command == "hierarchy") {
    return Hierarchy(flags, in_path);
  }

  auto zone = zone::LoadMasterFile(in_path, zone::MasterFileOptions{});
  if (!zone.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(),
                 zone.error().ToString().c_str());
    return 1;
  }

  if (command == "validate") {
    if (auto s = zone->Validate(); !s.ok()) {
      std::fprintf(stderr, "INVALID: %s\n", s.error().ToString().c_str());
      return 1;
    }
    std::printf("OK: %s (%zu records)\n", zone->origin().ToString().c_str(),
                zone->record_count());
    return 0;
  }
  if (command == "info") {
    return Info(*zone);
  }
  if (command == "sign" || command == "normalize") {
    if (args.size() < 3) {
      std::fprintf(stderr, "missing OUTFILE\n%s\n", kUsage);
      return 2;
    }
    if (command == "sign") {
      zone::DnssecConfig config;
      config.zsk_bits =
          static_cast<int>(flags.GetInt("zsk-bits", 1024).value_or(1024));
      config.ksk_bits =
          static_cast<int>(flags.GetInt("ksk-bits", 2048).value_or(2048));
      config.zsk_rollover = flags.GetBool("rollover", false);
      if (auto s = zone::SignZone(*zone, config); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
        return 1;
      }
    }
    if (auto s = zone::SaveMasterFile(*zone, args[2]); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
      return 1;
    }
    std::printf("%s -> %s (%zu records)\n", in_path.c_str(), args[2].c_str(),
                zone->record_count());
    return 0;
  }
  std::fprintf(stderr, "unknown command %s\n%s\n", command.c_str(), kUsage);
  return 2;
}
