// ldp-zone-tool: zone-file utilities — validate, DNSSEC-sign, normalize,
// and summarize master files.
//
//   ldp_zone_tool validate zone.db
//   ldp_zone_tool sign --zsk-bits 2048 --rollover zone.db signed.db
//   ldp_zone_tool normalize zone.db out.db      (canonical order, FQDNs)
//   ldp_zone_tool info zone.db
#include <cstdio>

#include "common/flags.h"
#include "zone/dnssec.h"
#include "zone/lookup.h"
#include "zone/masterfile.h"

using namespace ldp;

namespace {

constexpr const char* kUsage =
    R"(usage: ldp_zone_tool COMMAND [flags] ZONEFILE [OUTFILE]
commands:
  validate   parse + servability checks (SOA, apex NS)
  sign       add synthetic DNSSEC (DNSKEY/NSEC/RRSIG); flags:
               --zsk-bits N (1024)  --ksk-bits N (2048)  --rollover
  normalize  rewrite in canonical order with fully-qualified names
  info       print summary: origin, counts, delegations, DNSSEC state)";

int Info(const zone::Zone& zone) {
  std::printf("origin:        %s\n", zone.origin().ToString().c_str());
  std::printf("records:       %zu\n", zone.record_count());
  std::printf("nodes:         %zu\n", zone.node_count());
  auto cuts = zone.DelegationPoints();
  std::printf("delegations:   %zu\n", cuts.size());
  for (size_t i = 0; i < cuts.size() && i < 5; ++i) {
    std::printf("  %s\n", cuts[i].ToString().c_str());
  }
  if (cuts.size() > 5) std::printf("  ... %zu more\n", cuts.size() - 5);
  bool signed_zone =
      zone.FindRRset(zone.origin(), dns::RRType::kDNSKEY) != nullptr;
  std::printf("dnssec:        %s\n", signed_zone ? "signed" : "unsigned");
  std::printf("est. memory:   %.1f KB\n",
              static_cast<double>(zone.MemoryFootprint()) / 1024.0);
  const dns::RRset* soa = zone.Soa();
  if (soa != nullptr && !soa->rdatas.empty()) {
    std::printf("soa serial:    %u\n",
                std::get<dns::SoaRdata>(soa->rdatas[0]).serial);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_result = Flags::Parse(argc, argv, {"rollover"});
  if (!flags_result.ok()) {
    std::fprintf(stderr, "%s\n", flags_result.error().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_result;
  if (auto s = flags.RequireKnown(
          {"zsk-bits", "ksk-bits", "rollover", "help"});
      !s.ok()) {
    std::fprintf(stderr, "%s\n%s\n", s.error().ToString().c_str(), kUsage);
    return 2;
  }
  const auto& args = flags.positional();
  if (flags.GetBool("help", false) || args.size() < 2) {
    std::fprintf(stderr, "%s\n", kUsage);
    return 2;
  }
  const std::string& command = args[0];
  const std::string& in_path = args[1];

  auto zone = zone::LoadMasterFile(in_path, zone::MasterFileOptions{});
  if (!zone.ok()) {
    std::fprintf(stderr, "%s: %s\n", in_path.c_str(),
                 zone.error().ToString().c_str());
    return 1;
  }

  if (command == "validate") {
    if (auto s = zone->Validate(); !s.ok()) {
      std::fprintf(stderr, "INVALID: %s\n", s.error().ToString().c_str());
      return 1;
    }
    std::printf("OK: %s (%zu records)\n", zone->origin().ToString().c_str(),
                zone->record_count());
    return 0;
  }
  if (command == "info") {
    return Info(*zone);
  }
  if (command == "sign" || command == "normalize") {
    if (args.size() < 3) {
      std::fprintf(stderr, "missing OUTFILE\n%s\n", kUsage);
      return 2;
    }
    if (command == "sign") {
      zone::DnssecConfig config;
      config.zsk_bits =
          static_cast<int>(flags.GetInt("zsk-bits", 1024).value_or(1024));
      config.ksk_bits =
          static_cast<int>(flags.GetInt("ksk-bits", 2048).value_or(2048));
      config.zsk_rollover = flags.GetBool("rollover", false);
      if (auto s = zone::SignZone(*zone, config); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
        return 1;
      }
    }
    if (auto s = zone::SaveMasterFile(*zone, args[2]); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
      return 1;
    }
    std::printf("%s -> %s (%zu records)\n", in_path.c_str(), args[2].c_str(),
                zone->record_count());
    return 0;
  }
  std::fprintf(stderr, "unknown command %s\n%s\n", command.c_str(), kUsage);
  return 2;
}
